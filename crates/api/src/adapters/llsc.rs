//! [`ConcurrentObject`] adapter for the releasable LL/SC object
//! (Algorithm 6), the perfect-HI building block of the universal
//! construction.

use hi_core::ObjectSpec;
use hi_llsc::{LlscLayout, PackedRLlsc, RLlscOp, RLlscResp, RLlscSpec};

use crate::object::{
    ConcurrentObject, HiLevel, ObjectHandle, OnlineProbe, ProbeVerdict, Progress, Roles,
};

/// Algorithm 6 through the unified facade: one packed word, `n` symmetric
/// handles, perfect HI (the word *is* a fixed bijection of the abstract
/// `(value, context)` state).
#[derive(Debug)]
pub struct LlscObject {
    spec: RLlscSpec,
    cell: PackedRLlsc,
}

/// The layout for `spec`: enough value bits for `0..v`, one context bit per
/// process (the same sizing rule as `hi_llsc::SimRLlsc`).
fn layout_for(spec: &RLlscSpec) -> LlscLayout {
    let val_bits = (64 - (spec.v() - 1).leading_zeros()).max(1);
    LlscLayout::new(val_bits, spec.n())
}

impl LlscObject {
    /// Creates the object implementing `spec`.
    pub fn new(spec: RLlscSpec) -> Self {
        let layout = layout_for(&spec);
        let v0 = spec.initial_state().0;
        LlscObject {
            spec,
            cell: PackedRLlsc::new(layout, v0),
        }
    }

    /// The underlying backend, for backend-specific inspection.
    pub fn backend(&self) -> &PackedRLlsc {
        &self.cell
    }
}

/// Per-process handle of [`LlscObject`]. Operations carrying a pid are
/// accepted only by the matching handle (the R-LLSC semantics are
/// process-relative).
#[derive(Debug)]
pub struct LlscHandle<'a> {
    cell: &'a PackedRLlsc,
    pid: usize,
}

impl ObjectHandle<RLlscSpec> for LlscHandle<'_> {
    fn apply(&mut self, op: RLlscOp) -> RLlscResp {
        if let Some(pid) = op.pid() {
            assert_eq!(pid, self.pid, "handle {} cannot invoke {op:?}", self.pid);
        }
        match op {
            RLlscOp::Ll { pid } => RLlscResp::Val(self.cell.ll(pid)),
            RLlscOp::Vl { pid } => RLlscResp::Bool(self.cell.vl(pid)),
            RLlscOp::Sc { pid, new } => RLlscResp::Bool(self.cell.sc(pid, new)),
            RLlscOp::Rl { pid } => RLlscResp::Bool(self.cell.rl(pid)),
            RLlscOp::Load => RLlscResp::Val(self.cell.load()),
            RLlscOp::Store { new } => {
                self.cell.store(new);
                RLlscResp::Bool(true)
            }
        }
    }

    fn supports(&self, op: &RLlscOp) -> bool {
        op.pid().map_or(true, |pid| pid == self.pid)
    }
}

impl ConcurrentObject<RLlscSpec> for LlscObject {
    type Handle<'a> = LlscHandle<'a>;

    fn spec(&self) -> &RLlscSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.spec.n() }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::Perfect
    }

    fn progress(&self) -> Progress {
        // Every LL/VL/SC/RL is a bounded number of primitives; SC fails
        // fast instead of retrying.
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<LlscHandle<'_>> {
        let cell = &self.cell;
        (0..self.spec.n())
            .map(|pid| LlscHandle { cell, pid })
            .collect()
    }

    fn handles_with_probe(&mut self) -> (Vec<LlscHandle<'_>>, Option<OnlineProbe<'_>>) {
        let cell = &self.cell;
        let (v, n) = (self.spec.v(), self.spec.n());
        let handles = (0..n).map(|pid| LlscHandle { cell, pid }).collect();
        // Perfect HI: the word is a bijection of `(value, context)`, so a
        // sample at any configuration must be the packing of an in-domain
        // pair — no stray bits above the fields, value inside the spec
        // domain, context inside the process range.
        let probe = OnlineProbe::new(move || {
            let raw = cell.raw();
            let layout = cell.layout();
            let (val, ctx) = (layout.val(raw), layout.context(raw));
            let in_domain = val < v && ctx < (1u64 << n);
            ProbeVerdict {
                canonical: in_domain && layout.pack(val, ctx) == raw,
                state: format!("({val}, {ctx:#b})"),
                mem: vec![raw],
            }
        });
        (handles, Some(probe))
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        vec![self.cell.raw()]
    }

    fn canonical(&self, state: &(u64, u64)) -> Option<Vec<u64>> {
        Some(vec![self.cell.layout().pack(state.0, state.1)])
    }

    /// Decodes `(value, context)` from the raw word.
    ///
    /// Because the word is a *bijection* of the abstract state, a
    /// decode-then-repack audit holds for any in-domain word; the
    /// falsifiable memory property here is domain membership, so this
    /// panics if the word holds an out-of-range value or stray context
    /// bits (e.g. a broken `RL` leaving bits above the process range).
    /// History leaks through the *value* field are what the drive's
    /// response linearization and the sim twin's perfect-HI monitor catch.
    fn abstract_state(&self) -> (u64, u64) {
        let raw = self.cell.raw();
        let layout = self.cell.layout();
        let (val, ctx) = (layout.val(raw), layout.context(raw));
        assert!(
            val < self.spec.v(),
            "memory corrupt: value {val} outside the spec domain 0..{}",
            self.spec.v()
        );
        assert!(
            ctx < (1 << self.spec.n()),
            "memory corrupt: context bits {ctx:#b} beyond the {} processes",
            self.spec.n()
        );
        (val, ctx)
    }
}
