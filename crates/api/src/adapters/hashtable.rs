//! [`ConcurrentObject`] adapter for the phase-free concurrent HI hash table
//! (the arXiv:2503.21016 direction): the first big-state, array-valued
//! memory representation behind the facade.

use hi_core::objects::{HashSetOp, HashSetResp, HashSetSpec};
use hi_hashtable::threaded::AtomicHiHashTable;

use crate::object::{ConcurrentObject, HiLevel, ObjectHandle, Progress, Roles};

/// The phase-free Robin Hood HI hash table through the unified facade:
/// `n` symmetric handles, each free to insert, remove and look up
/// concurrently; lookups lock-free; state-quiescent HI over the slot array.
#[derive(Debug)]
pub struct HashTableObject {
    spec: HashSetSpec,
    n: usize,
    table: AtomicHiHashTable,
}

impl HashTableObject {
    /// Creates the table implementing `spec` with `capacity` slots, shared
    /// by `n` handles.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > spec.t()` (the domain must never fill the
    /// table) and `n >= 1`.
    pub fn new(spec: HashSetSpec, capacity: usize, n: usize) -> Self {
        assert!(
            capacity > spec.t() as usize,
            "capacity {capacity} must exceed the domain size {}",
            spec.t()
        );
        assert!(n >= 1, "at least one handle");
        HashTableObject {
            spec,
            n,
            table: AtomicHiHashTable::new(capacity),
        }
    }

    /// The underlying backend, for backend-specific inspection. The backend
    /// accepts any nonzero `u32` key; mutating it directly with keys outside
    /// the spec's domain breaks the facade's state decode, which
    /// [`abstract_state`](ConcurrentObject::abstract_state) reports loudly.
    pub fn backend(&self) -> &AtomicHiHashTable {
        &self.table
    }

    /// The canonical slot array of a state mask, via the sequential oracle.
    fn canonical_slots(&self, state: u64) -> Vec<u64> {
        hi_hashtable::canonical_slots_of_mask(self.table.capacity(), self.spec.t(), state)
    }
}

/// Role handle of [`HashTableObject`]: all handles are symmetric.
#[derive(Debug)]
pub struct HashTableHandle<'a> {
    table: &'a AtomicHiHashTable,
    t: u32,
}

impl ObjectHandle<HashSetSpec> for HashTableHandle<'_> {
    fn apply(&mut self, op: HashSetOp) -> HashSetResp {
        // Enforce the spec's domain exactly as `HashSetSpec::apply` does:
        // the backend accepts any nonzero `u32`, but an out-of-domain key
        // would not survive the mask decode in `abstract_state`.
        let (HashSetOp::Insert(e) | HashSetOp::Remove(e) | HashSetOp::Contains(e)) = op;
        assert!((1..=self.t).contains(&e), "element {e} out of domain");
        let b = match op {
            HashSetOp::Insert(_) => self.table.insert(e),
            HashSetOp::Remove(_) => self.table.remove(e),
            HashSetOp::Contains(_) => self.table.contains(e),
        };
        HashSetResp::Bool(b)
    }

    fn supports(&self, _op: &HashSetOp) -> bool {
        true
    }
}

impl ConcurrentObject<HashSetSpec> for HashTableObject {
    type Handle<'a> = HashTableHandle<'a>;

    fn spec(&self) -> &HashSetSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // Updates serialize through the global seqlock: an updater crashed
        // mid-critical-section leaves the sequence word odd forever and
        // wedges every later lookup's validation loop. The ROADMAP's
        // lock-free-updates migration is exactly the move of this class to
        // `LockFree`.
        Progress::Blocking
    }

    fn handles(&mut self) -> Vec<HashTableHandle<'_>> {
        (0..self.n)
            .map(|_| HashTableHandle {
                table: &self.table,
                t: self.spec.t(),
            })
            .collect()
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        // The slot array is the memory representation; the seqlock word is
        // synchronization state (see the backend's module docs).
        self.table.memory().iter().map(|&k| u64::from(k)).collect()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(self.canonical_slots(*state))
    }

    fn abstract_state(&self) -> u64 {
        self.table.keys().into_iter().fold(0u64, |mask, k| {
            assert!(
                (1..=self.spec.t()).contains(&k),
                "backend holds out-of-domain key {k} (domain 1..={}): \
                 was it mutated through backend() with unchecked keys?",
                self.spec.t()
            );
            mask | (1 << k)
        })
    }
}
