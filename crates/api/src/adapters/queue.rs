//! [`ConcurrentObject`] adapter for the positional HI queue (§5.4's
//! companion possibility result).

use hi_core::objects::{BoundedQueueSpec, QueueOp, QueueResp};
use hi_queue::threaded::{AtomicPositionalQueue, QueueMutator, QueuePeeker};

use crate::object::{ConcurrentObject, HiLevel, ObjectHandle, Progress, Roles};

/// The positional HI queue through the unified facade: single mutator
/// (`Enqueue`/`Dequeue`, wait-free), single observer (`Peek`, lock-free),
/// state-quiescent HI.
#[derive(Debug)]
pub struct QueueObject {
    spec: BoundedQueueSpec,
    q: AtomicPositionalQueue,
}

impl QueueObject {
    /// Creates the queue implementing `spec`, initially empty.
    pub fn new(spec: BoundedQueueSpec) -> Self {
        QueueObject {
            spec,
            q: AtomicPositionalQueue::new(spec.t(), spec.cap()),
        }
    }

    /// The underlying backend, for backend-specific inspection.
    pub fn backend(&self) -> &AtomicPositionalQueue {
        &self.q
    }
}

/// Role handle of [`QueueObject`].
#[derive(Debug)]
pub enum QueueHandle<'a> {
    /// Handle 0: the single mutator.
    Mutator(QueueMutator<'a>),
    /// Handle 1: the single observer.
    Observer(QueuePeeker<'a>),
}

impl ObjectHandle<BoundedQueueSpec> for QueueHandle<'_> {
    fn apply(&mut self, op: QueueOp) -> QueueResp {
        match (self, op) {
            (QueueHandle::Mutator(m), QueueOp::Enqueue(v)) => {
                if m.enqueue(v) {
                    QueueResp::Empty
                } else {
                    QueueResp::Full
                }
            }
            (QueueHandle::Mutator(m), QueueOp::Dequeue) => match m.dequeue() {
                Some(v) => QueueResp::Value(v),
                None => QueueResp::Empty,
            },
            (QueueHandle::Observer(p), QueueOp::Peek) => match p.peek() {
                Some(v) => QueueResp::Value(v),
                None => QueueResp::Empty,
            },
            (QueueHandle::Mutator(_), op) => panic!("the mutator cannot invoke {op:?}"),
            (QueueHandle::Observer(_), op) => panic!("the observer cannot invoke {op:?}"),
        }
    }

    fn supports(&self, op: &QueueOp) -> bool {
        matches!(
            (self, op),
            (
                QueueHandle::Mutator(_),
                QueueOp::Enqueue(_) | QueueOp::Dequeue
            ) | (QueueHandle::Observer(_), QueueOp::Peek)
        )
    }
}

impl ConcurrentObject<BoundedQueueSpec> for QueueObject {
    type Handle<'a> = QueueHandle<'a>;

    fn spec(&self) -> &BoundedQueueSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // Peek spins while LEN claims a non-empty queue whose front slot is
        // still clear: a mutator crashed mid-Enqueue/Dequeue wedges it.
        Progress::Blocking
    }

    fn handles(&mut self) -> Vec<QueueHandle<'_>> {
        let (m, p) = self.q.split();
        vec![QueueHandle::Mutator(m), QueueHandle::Observer(p)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.q.snapshot()
    }

    fn canonical(&self, state: &Vec<u32>) -> Option<Vec<u64>> {
        Some(self.q.canonical(state))
    }

    fn abstract_state(&self) -> Vec<u32> {
        self.q.decode_state()
    }
}
