//! [`ConcurrentObject`] adapter for the sharded table-of-tables
//! ([`hi_shard::ShardedHiHashTable`]): the scale-out backend, generic over
//! any [`KeySetSpec`] so the same adapter serves the registry's small
//! enumerable instance ([`HashSetSpec`](hi_core::objects::HashSetSpec))
//! and the soak harness's big-domain instances
//! ([`BigHashSetSpec`](hi_core::objects::BigHashSetSpec)).
//!
//! Two facade hooks come alive here:
//!
//! * [`ConcurrentObject::maintenance`] — the table's online resizes are
//!   background maintenance; the adapter surfaces their count and total
//!   pause so the soak harness can attribute them per epoch.
//! * [`ConcurrentObject::sampled_audit`] — above
//!   [`SAMPLED_AUDIT_DOMAIN`], the drain-barrier audit switches from the
//!   full-image comparison to a composed per-shard sample: `k`
//!   seed-selected shards compared exhaustively against their canonical
//!   images, every other shard scanned for the cheap structural
//!   invariants (capacity word correct for its key count, every key
//!   in-domain and routed home, Robin Hood runs gap-free) without
//!   recomputing canonical layouts.

use std::marker::PhantomData;
use std::time::Duration;

use hi_core::objects::{HashSetOp, HashSetResp, KeySetSpec};
use hi_core::SplitMix64;
use hi_hashtable::displacement;
use hi_shard::{cap_for, ShardedHiHashTable};

use crate::object::{
    ConcurrentObject, HiLevel, MaintenanceSnapshot, ObjectHandle, Progress, Roles, SampledAudit,
};

/// Domain bound up to which the full-image barrier audit is considered
/// cheap; above it [`ShardedTableObject::sampled_audit`] offers the
/// composed per-shard sample instead.
pub const SAMPLED_AUDIT_DOMAIN: u32 = 4096;

/// Shards compared exhaustively per sample (clamped to the shard count).
const EXHAUSTIVE_SHARDS_PER_SAMPLE: usize = 2;

/// Decorrelates the audit's shard selection from other users of the seed.
const SAMPLE_SALT: u64 = 0xa0d1_7b65_93c5_2f11;

/// The sharded HI hash table through the unified facade: `n` symmetric
/// handles over independently locked, independently resizable Robin Hood
/// shards; lookups lock-free; state-quiescent HI over the concatenation of
/// every shard's capacity word and live arena prefix.
#[derive(Debug)]
pub struct ShardedTableObject<S: KeySetSpec> {
    spec: S,
    n: usize,
    table: ShardedHiHashTable,
}

impl<S: KeySetSpec> ShardedTableObject<S> {
    /// Creates the table implementing `spec` with `shards` shards, each
    /// starting at logical capacity `base`, shared by `n` handles.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `base == 0` or `n == 0`.
    pub fn new(spec: S, shards: usize, base: usize, n: usize) -> Self {
        assert!(n >= 1, "at least one handle");
        let table = ShardedHiHashTable::new(spec.domain(), shards, base);
        ShardedTableObject { spec, n, table }
    }

    /// The underlying backend, for backend-specific inspection. Mutating a
    /// shard directly with keys it does not own corrupts the shard map,
    /// which both audits report loudly.
    pub fn backend(&self) -> &ShardedHiHashTable {
        &self.table
    }

    /// Runs one sampled audit unconditionally (the
    /// [`ConcurrentObject::sampled_audit`] hook gates this on the domain
    /// size). Only meaningful at state-quiescent points.
    pub fn audit_sample(&self, seed: u64) -> SampledAudit {
        let shards = self.table.num_shards();
        let k = EXHAUSTIVE_SHARDS_PER_SAMPLE.min(shards);
        let mut rng = SplitMix64::new(seed ^ SAMPLE_SALT);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let s = rng.below(shards);
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        let mut failure: Option<String> = None;
        let mut cells_spot_checked = 0usize;
        for s in 0..shards {
            let shard = self.table.shard(s);
            let view = shard.view();
            let cap = view[0] as usize;
            let cells = &view[1..];
            let keys: Vec<u32> = cells
                .iter()
                .filter(|&&v| v != 0)
                .map(|&v| v as u32)
                .collect();
            // Routing and domain hold in every shard, sampled or not: a
            // misplaced key can hide from the canonical comparison of its
            // *home* shard, so this scan is what catches cross-shard
            // corruption.
            for &key in &keys {
                if failure.is_some() {
                    break;
                }
                if !(1..=self.spec.domain()).contains(&key) {
                    failure = Some(format!("shard {s}: out-of-domain key {key}"));
                } else if self.table.shard_index(key) != s {
                    failure = Some(format!(
                        "shard {s}: key {key} belongs to shard {}",
                        self.table.shard_index(key)
                    ));
                }
            }
            if failure.is_some() {
                continue;
            }
            if chosen.contains(&s) {
                let canonical = shard.canonical_view(keys.iter().copied());
                if view != canonical {
                    failure = Some(format!(
                        "shard {s}: observed {view:?} != canonical {canonical:?}"
                    ));
                }
            } else {
                // Structural spot checks, no canonical-layout recomputation:
                // the capacity word is the pure function of the key count,
                // and every stored key heads a gap-free Robin Hood run.
                cells_spot_checked += cells.len();
                if cap != cap_for(keys.len(), shard.base()) {
                    failure = Some(format!(
                        "shard {s}: capacity word {cap} for {} keys (want {})",
                        keys.len(),
                        cap_for(keys.len(), shard.base())
                    ));
                    continue;
                }
                for (i, &v) in cells.iter().enumerate() {
                    if v == 0 {
                        continue;
                    }
                    let d = displacement(v as u32, i, cap);
                    let prev = cells[(i + cap - 1) % cap];
                    if d > 0 && prev == 0 {
                        failure = Some(format!(
                            "shard {s}: key {v} displaced {d} past an empty cell"
                        ));
                        break;
                    }
                }
            }
        }
        SampledAudit {
            shards_total: shards,
            shards_exhaustive: k,
            cells_spot_checked,
            failure,
        }
    }
}

/// Role handle of [`ShardedTableObject`]: all handles are symmetric.
#[derive(Debug)]
pub struct ShardedTableHandle<'a, S> {
    table: &'a ShardedHiHashTable,
    _spec: PhantomData<fn() -> S>,
}

impl<S: KeySetSpec> ObjectHandle<S> for ShardedTableHandle<'_, S> {
    fn apply(&mut self, op: HashSetOp) -> HashSetResp {
        // The table's router enforces the spec's domain exactly as the
        // spec's own `apply` does ("element {e} out of domain").
        let b = match op {
            HashSetOp::Insert(e) => self.table.insert(e),
            HashSetOp::Remove(e) => self.table.remove(e),
            HashSetOp::Contains(e) => self.table.contains(e),
        };
        HashSetResp::Bool(b)
    }

    fn supports(&self, _op: &HashSetOp) -> bool {
        true
    }
}

impl<S: KeySetSpec> ConcurrentObject<S> for ShardedTableObject<S> {
    type Handle<'a>
        = ShardedTableHandle<'a, S>
    where
        Self: 'a;

    fn spec(&self) -> &S {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // Updates serialize through their shard's seqlock (though shards
        // are independent: a crash wedges one shard, not the table) — the
        // same class as the single table, for the same reason.
        Progress::Blocking
    }

    fn handles(&mut self) -> Vec<ShardedTableHandle<'_, S>> {
        (0..self.n)
            .map(|_| ShardedTableHandle {
                table: &self.table,
                _spec: PhantomData,
            })
            .collect()
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        // Per shard: the capacity word then the live arena prefix. The
        // seqlock words are synchronization state and excluded, as in the
        // single-table adapter.
        self.table.memory()
    }

    fn canonical(&self, state: &S::State) -> Option<Vec<u64>> {
        Some(self.table.canonical_memory(self.spec.keys_of_state(state)))
    }

    fn abstract_state(&self) -> S::State {
        self.spec.state_from_keys(&self.table.keys())
    }

    fn sampled_audit(&self, seed: u64) -> Option<SampledAudit> {
        if self.spec.domain() <= SAMPLED_AUDIT_DOMAIN {
            // Small domain: the full-image barrier audit is cheap and
            // strictly stronger — decline the sample.
            return None;
        }
        Some(self.audit_sample(seed))
    }

    fn maintenance(&self) -> Option<MaintenanceSnapshot> {
        Some(MaintenanceSnapshot {
            resizes: self.table.resizes(),
            resize_pause: Duration::from_nanos(self.table.resize_nanos()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::objects::{BigHashSetSpec, HashSetSpec};

    fn churn<S: KeySetSpec>(obj: &mut ShardedTableObject<S>, keys: impl Iterator<Item = u32>) {
        let mut handles = obj.handles();
        for (i, k) in keys.enumerate() {
            let h = handles.len();
            handles[i % h].apply(HashSetOp::Insert(k));
            if i % 3 == 0 {
                handles[i % h].apply(HashSetOp::Remove(k));
            }
        }
    }

    #[test]
    fn quiescent_memory_is_the_composed_canonical_image() {
        let mut obj = ShardedTableObject::new(HashSetSpec::new(32), 4, 2, 3);
        churn(&mut obj, 1..=32u32);
        let state = obj.abstract_state();
        assert_eq!(Some(obj.mem_snapshot()), obj.canonical(&state));
        let m = obj.maintenance().expect("resizable backends report");
        assert!(m.resizes > 0, "32 keys into base-2 shards must migrate");
    }

    #[test]
    fn small_domains_decline_the_sampled_audit() {
        let obj = ShardedTableObject::new(HashSetSpec::new(8), 4, 2, 2);
        assert!(obj.sampled_audit(7).is_none());
        // ... but the sample itself still runs and passes on demand.
        assert!(obj.audit_sample(7).passed());
    }

    #[test]
    fn big_domains_offer_a_passing_sample() {
        let mut obj = ShardedTableObject::new(BigHashSetSpec::new(1 << 13), 8, 2, 2);
        churn(&mut obj, (1..=2048u32).map(|k| k * 3));
        let audit = obj.sampled_audit(41).expect("domain exceeds the bound");
        assert!(audit.passed(), "clean table failed: {:?}", audit.failure);
        assert_eq!(audit.shards_total, 8);
        assert_eq!(audit.shards_exhaustive, 2);
        assert!(audit.cells_spot_checked > 0, "rest must be spot-checked");
        // Different seeds choose different shards, same verdict.
        assert!(obj.audit_sample(42).passed());
    }

    #[test]
    fn misrouted_keys_fail_the_sampled_audit() {
        let obj = ShardedTableObject::new(BigHashSetSpec::new(1 << 13), 4, 2, 1);
        let key = 17u32;
        let wrong = (obj.backend().shard_index(key) + 1) % 4;
        obj.backend().shard(wrong).insert(key);
        let audit = obj.audit_sample(3);
        let failure = audit.failure.expect("corruption must be caught");
        assert!(failure.contains("belongs to shard"), "got: {failure}");
    }
}
