//! [`ConcurrentObject`] adapters for the §4 SWSR register backends, the
//! §5.1 max register and the §5.1 perfect-HI set.

use hi_core::objects::{
    MaxRegisterOp, MaxRegisterSpec, MultiRegisterSpec, RegisterOp, RegisterResp, SetOp, SetResp,
    SetSpec,
};
use hi_registers::threaded::{
    AtomicHiSet, AtomicLockFreeHi, AtomicMaxRegister, AtomicVidyasankar, AtomicWaitFreeHi,
    LockFreeHiReader, LockFreeHiWriter, MaxRegisterReader, MaxRegisterWriter, VidyasankarReader,
    VidyasankarWriter, WaitFreeHiReader, WaitFreeHiWriter,
};

use crate::object::{
    ConcurrentObject, HiLevel, ObjectHandle, OnlineProbe, ProbeVerdict, Progress, Roles,
};

/// Generates the adapter object + role-enum handle for one SWSR register
/// backend; the `ConcurrentObject` impls differ per algorithm (snapshot
/// shape, canonical form, HI level) and are written out below.
macro_rules! swsr_register_adapter {
    (
        $(#[$obj_doc:meta])* $obj:ident,
        $(#[$handle_doc:meta])* $handle:ident,
        $backend:ident, $writer:ident, $reader:ident
    ) => {
        $(#[$obj_doc])*
        #[derive(Debug)]
        pub struct $obj {
            spec: MultiRegisterSpec,
            reg: $backend,
        }

        impl $obj {
            /// Creates the register implementing `spec`.
            pub fn new(spec: MultiRegisterSpec) -> Self {
                $obj { spec, reg: $backend::new(spec.k(), spec.initial_value()) }
            }

            /// The underlying backend, for backend-specific inspection.
            pub fn backend(&self) -> &$backend {
                &self.reg
            }
        }

        $(#[$handle_doc])*
        #[derive(Debug)]
        pub enum $handle<'a> {
            /// Handle 0: the single writer.
            Writer($writer<'a>),
            /// Handle 1: the single reader.
            Reader($reader<'a>),
        }

        impl ObjectHandle<MultiRegisterSpec> for $handle<'_> {
            fn apply(&mut self, op: RegisterOp) -> RegisterResp {
                match (self, op) {
                    ($handle::Writer(w), RegisterOp::Write(v)) => {
                        w.write(v);
                        RegisterResp::Ack
                    }
                    ($handle::Reader(r), RegisterOp::Read) => RegisterResp::Value(r.read()),
                    ($handle::Writer(_), op) => panic!("the writer cannot invoke {op:?}"),
                    ($handle::Reader(_), op) => panic!("the reader cannot invoke {op:?}"),
                }
            }

            fn supports(&self, op: &RegisterOp) -> bool {
                matches!(
                    (self, op),
                    ($handle::Writer(_), RegisterOp::Write(_))
                        | ($handle::Reader(_), RegisterOp::Read)
                )
            }
        }
    };
}

swsr_register_adapter! {
    /// Algorithm 1 (Vidyasankar) through the unified facade: wait-free,
    /// linearizable, **not** history independent — [`ConcurrentObject::canonical`]
    /// returns `None` and drivers skip the memory audit.
    VidyasankarObject,
    /// Role handle of [`VidyasankarObject`].
    VidyasankarHandle,
    AtomicVidyasankar, VidyasankarWriter, VidyasankarReader
}

swsr_register_adapter! {
    /// Algorithms 2+3 through the unified facade: writer wait-free, reader
    /// lock-free, state-quiescent HI.
    LockFreeHiObject,
    /// Role handle of [`LockFreeHiObject`].
    LockFreeHiHandle,
    AtomicLockFreeHi, LockFreeHiWriter, LockFreeHiReader
}

swsr_register_adapter! {
    /// Algorithm 4 through the unified facade: wait-free, quiescent HI.
    WaitFreeHiObject,
    /// Role handle of [`WaitFreeHiObject`].
    WaitFreeHiHandle,
    AtomicWaitFreeHi, WaitFreeHiWriter, WaitFreeHiReader
}

/// The canonical one-hot `A` array of value `v` for a `k`-valued register.
fn one_hot(k: u64, v: u64) -> Vec<u64> {
    let mut snap = vec![0u64; k as usize];
    snap[(v - 1) as usize] = 1;
    snap
}

impl ConcurrentObject<MultiRegisterSpec> for VidyasankarObject {
    type Handle<'a> = VidyasankarHandle<'a>;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::NotHi
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<VidyasankarHandle<'_>> {
        let (w, r) = self.reg.split();
        vec![VidyasankarHandle::Writer(w), VidyasankarHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot_a()
    }

    fn canonical(&self, _state: &u64) -> Option<Vec<u64>> {
        None // Algorithm 1 leaks history; there is no canonical form.
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}

impl ConcurrentObject<MultiRegisterSpec> for LockFreeHiObject {
    type Handle<'a> = LockFreeHiHandle<'a>;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // The reader retries only while the writer keeps landing writes; a
        // crashed (static) writer cannot starve it.
        Progress::LockFree
    }

    fn handles(&mut self) -> Vec<LockFreeHiHandle<'_>> {
        let (w, r) = self.reg.split();
        vec![LockFreeHiHandle::Writer(w), LockFreeHiHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot_a()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(one_hot(self.spec.k(), *state))
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}

/// The §5.1 max register through the unified facade: wait-free on both
/// roles, state-quiescent HI — the possibility result for objects outside
/// `C_t`, sitting right next to the §4 registers it circumvents.
#[derive(Debug)]
pub struct MaxRegisterObject {
    spec: MaxRegisterSpec,
    reg: AtomicMaxRegister,
}

impl MaxRegisterObject {
    /// Creates the max register implementing `spec` (initial maximum 1).
    pub fn new(spec: MaxRegisterSpec) -> Self {
        MaxRegisterObject {
            spec,
            reg: AtomicMaxRegister::new(spec.k()),
        }
    }

    /// The underlying backend, for backend-specific inspection.
    pub fn backend(&self) -> &AtomicMaxRegister {
        &self.reg
    }
}

/// Role handle of [`MaxRegisterObject`].
#[derive(Debug)]
pub enum MaxRegisterHandle<'a> {
    /// Handle 0: the single writer.
    Writer(MaxRegisterWriter<'a>),
    /// Handle 1: the single reader.
    Reader(MaxRegisterReader<'a>),
}

impl ObjectHandle<MaxRegisterSpec> for MaxRegisterHandle<'_> {
    fn apply(&mut self, op: MaxRegisterOp) -> RegisterResp {
        match (self, op) {
            (MaxRegisterHandle::Writer(w), MaxRegisterOp::WriteMax(v)) => {
                w.write_max(v);
                RegisterResp::Ack
            }
            (MaxRegisterHandle::Reader(r), MaxRegisterOp::ReadMax) => {
                RegisterResp::Value(r.read_max())
            }
            (MaxRegisterHandle::Writer(_), op) => panic!("the writer cannot invoke {op:?}"),
            (MaxRegisterHandle::Reader(_), op) => panic!("the reader cannot invoke {op:?}"),
        }
    }

    fn supports(&self, op: &MaxRegisterOp) -> bool {
        matches!(
            (self, op),
            (MaxRegisterHandle::Writer(_), MaxRegisterOp::WriteMax(_))
                | (MaxRegisterHandle::Reader(_), MaxRegisterOp::ReadMax)
        )
    }
}

impl ConcurrentObject<MaxRegisterSpec> for MaxRegisterObject {
    type Handle<'a> = MaxRegisterHandle<'a>;

    fn spec(&self) -> &MaxRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<MaxRegisterHandle<'_>> {
        let (w, r) = self.reg.split();
        vec![MaxRegisterHandle::Writer(w), MaxRegisterHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot_a()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(self.reg.canonical(*state))
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}

/// The §5.1 perfect-HI set through the unified facade: `n` symmetric
/// handles, every operation a single primitive, canonical memory in *every*
/// configuration.
#[derive(Debug)]
pub struct HiSetObject {
    spec: SetSpec,
    n: usize,
    set: AtomicHiSet,
}

impl HiSetObject {
    /// Creates the set implementing `spec`, shared by `n` handles.
    pub fn new(spec: SetSpec, n: usize) -> Self {
        assert!(n >= 1, "at least one handle");
        HiSetObject {
            spec,
            n,
            set: AtomicHiSet::new(spec.t()),
        }
    }

    /// The underlying backend, for backend-specific inspection.
    pub fn backend(&self) -> &AtomicHiSet {
        &self.set
    }
}

/// Role handle of [`HiSetObject`]: all handles are symmetric.
#[derive(Debug)]
pub struct HiSetHandle<'a> {
    set: &'a AtomicHiSet,
}

impl ObjectHandle<SetSpec> for HiSetHandle<'_> {
    fn apply(&mut self, op: SetOp) -> SetResp {
        match op {
            SetOp::Insert(e) => {
                self.set.insert(e);
                SetResp::Ack
            }
            SetOp::Remove(e) => {
                self.set.remove(e);
                SetResp::Ack
            }
            SetOp::Contains(e) => SetResp::Bool(self.set.contains(e)),
        }
    }

    fn supports(&self, _op: &SetOp) -> bool {
        true
    }
}

impl ConcurrentObject<SetSpec> for HiSetObject {
    type Handle<'a> = HiSetHandle<'a>;

    fn spec(&self) -> &SetSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::Perfect
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree // one primitive per operation
    }

    fn handles(&mut self) -> Vec<HiSetHandle<'_>> {
        (0..self.n)
            .map(|_| HiSetHandle { set: &self.set })
            .collect()
    }

    fn handles_with_probe(&mut self) -> (Vec<HiSetHandle<'_>>, Option<OnlineProbe<'_>>) {
        let set = &self.set;
        let handles = (0..self.n).map(|_| HiSetHandle { set }).collect();
        // Perfect HI: every configuration's memory is the characteristic
        // vector of *some* state, so a sample at any moment must decode
        // and re-encode to itself — each cell is exactly 0 or 1.
        let probe = OnlineProbe::new(move || {
            let mem = set.snapshot();
            let state = hi_core::cells::mask_of_bits(&mem);
            ProbeVerdict {
                canonical: mem == set.canonical(state),
                state: format!("{state:#x}"),
                mem,
            }
        });
        (handles, Some(probe))
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.set.snapshot()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(self.set.canonical(*state))
    }

    fn abstract_state(&self) -> u64 {
        self.set.decode_state()
    }
}

impl ConcurrentObject<MultiRegisterSpec> for WaitFreeHiObject {
    type Handle<'a> = WaitFreeHiHandle<'a>;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::Quiescent
    }

    fn progress(&self) -> Progress {
        Progress::WaitFree
    }

    fn handles(&mut self) -> Vec<WaitFreeHiHandle<'_>> {
        let (w, r) = self.reg.split_quiescent();
        vec![WaitFreeHiHandle::Writer(w), WaitFreeHiHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(self.reg.canonical(*state))
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}
