//! [`ConcurrentObject`] adapters for the §4 SWSR register backends.

use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
use hi_registers::threaded::{
    AtomicLockFreeHi, AtomicVidyasankar, AtomicWaitFreeHi, LockFreeHiReader, LockFreeHiWriter,
    VidyasankarReader, VidyasankarWriter, WaitFreeHiReader, WaitFreeHiWriter,
};

use crate::object::{ConcurrentObject, HiLevel, ObjectHandle, Roles};

/// Generates the adapter object + role-enum handle for one SWSR register
/// backend; the `ConcurrentObject` impls differ per algorithm (snapshot
/// shape, canonical form, HI level) and are written out below.
macro_rules! swsr_register_adapter {
    (
        $(#[$obj_doc:meta])* $obj:ident,
        $(#[$handle_doc:meta])* $handle:ident,
        $backend:ident, $writer:ident, $reader:ident
    ) => {
        $(#[$obj_doc])*
        #[derive(Debug)]
        pub struct $obj {
            spec: MultiRegisterSpec,
            reg: $backend,
        }

        impl $obj {
            /// Creates the register implementing `spec`.
            pub fn new(spec: MultiRegisterSpec) -> Self {
                $obj { spec, reg: $backend::new(spec.k(), spec.initial_value()) }
            }

            /// The underlying backend, for backend-specific inspection.
            pub fn backend(&self) -> &$backend {
                &self.reg
            }
        }

        $(#[$handle_doc])*
        #[derive(Debug)]
        pub enum $handle<'a> {
            /// Handle 0: the single writer.
            Writer($writer<'a>),
            /// Handle 1: the single reader.
            Reader($reader<'a>),
        }

        impl ObjectHandle<MultiRegisterSpec> for $handle<'_> {
            fn apply(&mut self, op: RegisterOp) -> RegisterResp {
                match (self, op) {
                    ($handle::Writer(w), RegisterOp::Write(v)) => {
                        w.write(v);
                        RegisterResp::Ack
                    }
                    ($handle::Reader(r), RegisterOp::Read) => RegisterResp::Value(r.read()),
                    ($handle::Writer(_), op) => panic!("the writer cannot invoke {op:?}"),
                    ($handle::Reader(_), op) => panic!("the reader cannot invoke {op:?}"),
                }
            }

            fn supports(&self, op: &RegisterOp) -> bool {
                matches!(
                    (self, op),
                    ($handle::Writer(_), RegisterOp::Write(_))
                        | ($handle::Reader(_), RegisterOp::Read)
                )
            }
        }
    };
}

swsr_register_adapter! {
    /// Algorithm 1 (Vidyasankar) through the unified facade: wait-free,
    /// linearizable, **not** history independent — [`ConcurrentObject::canonical`]
    /// returns `None` and drivers skip the memory audit.
    VidyasankarObject,
    /// Role handle of [`VidyasankarObject`].
    VidyasankarHandle,
    AtomicVidyasankar, VidyasankarWriter, VidyasankarReader
}

swsr_register_adapter! {
    /// Algorithms 2+3 through the unified facade: writer wait-free, reader
    /// lock-free, state-quiescent HI.
    LockFreeHiObject,
    /// Role handle of [`LockFreeHiObject`].
    LockFreeHiHandle,
    AtomicLockFreeHi, LockFreeHiWriter, LockFreeHiReader
}

swsr_register_adapter! {
    /// Algorithm 4 through the unified facade: wait-free, quiescent HI.
    WaitFreeHiObject,
    /// Role handle of [`WaitFreeHiObject`].
    WaitFreeHiHandle,
    AtomicWaitFreeHi, WaitFreeHiWriter, WaitFreeHiReader
}

/// The canonical one-hot `A` array of value `v` for a `k`-valued register.
fn one_hot(k: u64, v: u64) -> Vec<u64> {
    let mut snap = vec![0u64; k as usize];
    snap[(v - 1) as usize] = 1;
    snap
}

impl ConcurrentObject<MultiRegisterSpec> for VidyasankarObject {
    type Handle<'a> = VidyasankarHandle<'a>;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::NotHi
    }

    fn handles(&mut self) -> Vec<VidyasankarHandle<'_>> {
        let (w, r) = self.reg.split();
        vec![VidyasankarHandle::Writer(w), VidyasankarHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot_a()
    }

    fn canonical(&self, _state: &u64) -> Option<Vec<u64>> {
        None // Algorithm 1 leaks history; there is no canonical form.
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}

impl ConcurrentObject<MultiRegisterSpec> for LockFreeHiObject {
    type Handle<'a> = LockFreeHiHandle<'a>;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn handles(&mut self) -> Vec<LockFreeHiHandle<'_>> {
        let (w, r) = self.reg.split();
        vec![LockFreeHiHandle::Writer(w), LockFreeHiHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot_a()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(one_hot(self.spec.k(), *state))
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}

impl ConcurrentObject<MultiRegisterSpec> for WaitFreeHiObject {
    type Handle<'a> = WaitFreeHiHandle<'a>;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::SingleWriterSingleReader
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::Quiescent
    }

    fn handles(&mut self) -> Vec<WaitFreeHiHandle<'_>> {
        let (w, r) = self.reg.split_quiescent();
        vec![WaitFreeHiHandle::Writer(w), WaitFreeHiHandle::Reader(r)]
    }

    fn mem_snapshot(&self) -> Vec<u64> {
        self.reg.snapshot()
    }

    fn canonical(&self, state: &u64) -> Option<Vec<u64>> {
        Some(self.reg.canonical(*state))
    }

    fn abstract_state(&self) -> u64 {
        self.reg.current_value()
    }
}
