#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! One object API to drive them all: the unified [`ConcurrentObject`]
//! facade over the workspace's threaded backends.
//!
//! The paper defines every algorithm against one abstract interface — an
//! object `(Q, q0, O, R, Δ)` with a memory representation `mem(C)` whose
//! canonical form is fixed at initialization (Proposition 3) — but each
//! threaded backend historically exposed a bespoke surface
//! (`split()` pairs, per-pid `handle(i)` claims, ad-hoc
//! `snapshot()`/`canonical()` conventions). This crate closes that gap:
//!
//! * [`ConcurrentObject`] / [`ObjectHandle`] — the facade: uniform
//!   construction ([`ConcurrentObject::handles`]), operation application,
//!   role metadata ([`Roles`]), HI classification ([`HiLevel`]) and
//!   quiescent-point auditing (`mem_snapshot()` vs `canonical(state)`).
//! * [`adapters`] — implementations for every threaded backend: the §4
//!   register algorithms, the positional HI queue, the releasable LL/SC
//!   word, and the universal construction over any
//!   [`EnumerableSpec`](hi_core::EnumerableSpec).
//! * [`drive`](crate::drive()) — a generic threaded stress driver: random
//!   role-respecting workload in, linearizability verdict plus quiescent
//!   memory audit out.
//! * [`registry`](crate::registry()) — named object×spec scenarios, each
//!   declared once from shared data ([`Scenario::of`]): a threaded backend
//!   behind [`ConcurrentObject`] next to its simulator twin behind
//!   `hi_spec::SimObject`, both driven by one generic checker pair on
//!   mirrored role-aware workloads, so conformance suites and benches
//!   iterate a list instead of accreting per-object glue.
//!
//! # Example
//!
//! Drive two different algorithms through the same code path:
//!
//! ```
//! use hi_api::adapters::{LockFreeHiObject, WaitFreeHiObject};
//! use hi_api::{drive, ConcurrentObject, DriveConfig};
//! use hi_core::objects::MultiRegisterSpec;
//!
//! let cfg = DriveConfig { ops_per_handle: 50, ..DriveConfig::default() };
//! let spec = MultiRegisterSpec::new(4, 1);
//! let report2 = drive(&mut LockFreeHiObject::new(spec), &cfg).unwrap();
//! let report4 = drive(&mut WaitFreeHiObject::new(spec), &cfg).unwrap();
//! assert!(report2.audited && report4.audited);
//! ```

pub mod adapters;
pub mod drive;
pub mod object;
pub mod registry;

pub use adapters::{
    HashTableObject, HiSetObject, LlscObject, LockFreeHiObject, MaxRegisterObject, QueueObject,
    ShardedTableObject, UniversalObject, VidyasankarObject, WaitFreeHiObject,
};
pub use drive::{
    drive, drive_watchdogged, random_script, throughput, DriveConfig, DriveError, DriveReport,
    HandleProgress, MetricsSnapshot, ProgressCounters,
};
pub use hi_spec::{ExhaustiveConfig, ExhaustiveReport};
pub use object::{
    ConcurrentObject, HiLevel, MaintenanceSnapshot, ObjectHandle, OnlineProbe, ProbeVerdict,
    Progress, Roles, SampledAudit,
};
pub use registry::{registry, repro_command, scenario, Scenario, ScenarioMeta, ScenarioReport};
