//! A registry of named object×spec scenarios, each declared **once** from
//! shared data and drivable in both worlds: the threaded backend through
//! the unified [`ConcurrentObject`] facade and the simulator twin through
//! [`hi_spec::SimObject`].
//!
//! Every [`Scenario`] is built by one generic constructor ([`Scenario::of`])
//! from a name, a description and the two constructors; the threaded run,
//! the sim check and the throughput run all derive from the same generic
//! driver pair ([`crate::drive`] / [`hi_spec::check_sim_object`]) and the
//! same role-aware workload generation ([`hi_core::menus_for`]), so the two
//! worlds are workload-mirrored *by construction* — there is no per-family
//! driver or menu glue to keep in sync. Adding a workload is one registry
//! entry, not a new test file.

use hi_core::objects::{
    BoundedQueueSpec, CounterSpec, HashSetSpec, MaxRegisterSpec, MultiRegisterSpec, SetSpec,
};
use hi_core::{EnumerableSpec, HiLevel, Progress, Roles};
use hi_hashtable::SimHiHashTable;
use hi_llsc::{RLlscSpec, SimRLlsc};
use hi_queue::PositionalQueue;
use hi_registers::{
    HiSet, LockFreeHiRegister, MaxRegister, VidyasankarRegister, WaitFreeHiRegister,
};
use hi_shard::SimShardedTable;
use hi_sim::{render_lanes, run_workload, Executor, Seeded};
use hi_spec::{
    check_sim_object, check_sim_object_exhaustive, check_sim_object_faults, sim_workload,
    ExhaustiveConfig, ExhaustiveReport, FaultSweepConfig, FaultSweepReport, SimObject,
    SimObjectReport,
};
use hi_universal::SimUniversal;

use crate::adapters::{
    HashTableObject, HiSetObject, LlscObject, LockFreeHiObject, MaxRegisterObject, QueueObject,
    ShardedTableObject, UniversalObject, VidyasankarObject, WaitFreeHiObject,
};
use crate::drive::{drive_watchdogged, throughput, DriveConfig, DriveError};
use crate::object::ConcurrentObject;

/// Step budget of the simulator twins (generous: the seeded scheduler must
/// get every lock-free retry loop through a bounded workload).
const SIM_MAX_STEPS: u64 = 2_000_000;

/// Transition cap of the sim-twin diagnostic rendered when a threaded run
/// wedges: enough lanes to see the shape of the schedule without drowning
/// the failure message.
const DIAGNOSE_TRANSITIONS: u64 = 120;

/// The one-line reproduction command printed with every seeded
/// conformance/fault-check failure. The vendored proptest stand-in does no
/// shrinking, so replaying the seed is the debugging path.
pub fn repro_command(test: &str, seed: u64) -> String {
    format!("HI_CONFORMANCE_SEED={seed} cargo test --test {test}")
}

/// Summary of one threaded scenario run, monomorphic so the registry can be
/// iterated without knowing each scenario's spec types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScenarioReport {
    /// Completed operations across all handles.
    pub ops: usize,
    /// Whether the quiescent memory audit ran (false only for non-HI
    /// backends).
    pub audited: bool,
}

/// The uniform metadata of one world of a scenario, surfaced so suites can
/// assert the threaded backend and the sim twin implement the *same*
/// abstract object under the same discipline without running either.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioMeta {
    /// The role discipline.
    pub roles: Roles,
    /// The history-independence guarantee.
    pub hi_level: HiLevel,
    /// The progress guarantee — what the fault checker lets a crash break.
    pub progress: Progress,
    /// Rendered spec parameters (the `Debug` form of the `ObjectSpec`).
    pub params: String,
    /// The adapter's Rust type, for registry-completeness suites.
    pub adapter: &'static str,
}

/// The monomorphic threaded driver of a scenario (captures only the entry's
/// constructor, a fn pointer).
type ThreadedDriver = Box<dyn Fn(&DriveConfig) -> Result<ScenarioReport, String> + Send + Sync>;
/// The monomorphic sim driver of a scenario.
type SimDriver = Box<dyn Fn(u64, usize) -> Result<SimObjectReport, String> + Send + Sync>;
/// The monomorphic throughput runner of a scenario.
type ThroughputDriver = Box<dyn Fn(usize, u64) -> usize + Send + Sync>;
/// The monomorphic fault-sweep driver of a scenario (crash/stall plans over
/// the simulator twin).
type FaultDriver = Box<dyn Fn(u64, usize) -> Result<FaultSweepReport, String> + Send + Sync>;
/// The monomorphic exhaustive-certification driver of a scenario (the
/// schedule-space model checker over the downsized sim instance).
type ExhaustiveDriver =
    Box<dyn Fn(&ExhaustiveConfig) -> Result<ExhaustiveReport, String> + Send + Sync>;

/// A named object×spec configuration: a threaded backend behind
/// [`ConcurrentObject`] plus its simulator twin behind
/// [`hi_spec::SimObject`], declared once from shared data.
pub struct Scenario {
    /// Stable name, `family/variant` style (e.g. `"register/waitfree-hi-k5"`).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    threaded_meta: ScenarioMeta,
    sim_meta: ScenarioMeta,
    small_params: String,
    threaded: ThreadedDriver,
    sim: SimDriver,
    throughput: ThroughputDriver,
    fault: FaultDriver,
    exhaustive: ExhaustiveDriver,
}

impl Scenario {
    /// Declares a scenario from its shared data: the two worlds'
    /// constructors, plus a *downsized* sim instance (`small_sim`, same
    /// machine type at exhaustively explorable parameters — t ≤ 3, n ≤ 2)
    /// for the schedule-space model checker. Everything else — workloads,
    /// oracles, menus, checks, metadata — derives generically.
    pub fn of<S, T, M>(
        name: &'static str,
        about: &'static str,
        threaded: fn() -> T,
        sim: fn() -> M,
        small_sim: fn() -> M,
    ) -> Scenario
    where
        S: EnumerableSpec + 'static,
        S::Op: Send,
        S::Resp: Send,
        S::State: Send,
        T: ConcurrentObject<S> + 'static,
        M: SimObject<S> + 'static,
    {
        let threaded_meta = {
            let obj = threaded();
            ScenarioMeta {
                roles: obj.roles(),
                hi_level: obj.hi_level(),
                progress: obj.progress(),
                params: format!("{:?}", obj.spec()),
                adapter: std::any::type_name::<T>(),
            }
        };
        let sim_meta = {
            let obj = sim();
            ScenarioMeta {
                roles: obj.roles(),
                hi_level: obj.hi_level(),
                progress: obj.progress(),
                params: format!("{:?}", SimObject::spec(&obj)),
                adapter: std::any::type_name::<M>(),
            }
        };
        let small_params = format!("{:?}", SimObject::spec(&small_sim()));
        Scenario {
            name,
            about,
            threaded_meta,
            sim_meta,
            small_params,
            threaded: Box::new(move |cfg| {
                // Watchdogged: a wedged backend resolves to a structured
                // error within cfg.deadline instead of hanging the suite;
                // the sim twin's lane rendering is appended as the mid-run
                // diagnostic the leaked threaded object cannot give.
                match drive_watchdogged(threaded, cfg) {
                    Ok(report) => Ok(ScenarioReport {
                        ops: report.history.records().len(),
                        audited: report.audited,
                    }),
                    Err(e) => {
                        let mut msg = e.to_string();
                        if matches!(e, DriveError::Wedged { .. }) {
                            msg.push_str("\nsim twin under the same seed:\n");
                            msg.push_str(&diagnose_sim(sim, cfg.seed, cfg.ops_per_handle));
                        }
                        Err(msg)
                    }
                }
            }),
            sim: Box::new(move |seed, ops_per_pid| {
                check_sim_object(&sim(), seed, ops_per_pid, SIM_MAX_STEPS)
            }),
            throughput: Box::new(move |ops, seed| throughput(&mut threaded(), ops, seed)),
            fault: Box::new(move |seed, ops_per_pid| {
                check_sim_object_faults(
                    &sim(),
                    &FaultSweepConfig::new(seed, ops_per_pid, SIM_MAX_STEPS),
                )
            }),
            exhaustive: Box::new(move |cfg| check_sim_object_exhaustive(&small_sim(), cfg)),
        }
    }

    /// The role discipline of the scenario (as declared by the threaded
    /// adapter; the conformance suite asserts the sim twin agrees).
    pub fn roles(&self) -> Roles {
        self.threaded_meta.roles
    }

    /// The history-independence guarantee of the scenario (as declared by
    /// the threaded adapter; the conformance suite asserts the sim twin
    /// agrees).
    pub fn hi_level(&self) -> HiLevel {
        self.threaded_meta.hi_level
    }

    /// The progress guarantee of the scenario (as declared by the threaded
    /// adapter; the conformance suite asserts the sim twin agrees).
    pub fn progress(&self) -> Progress {
        self.threaded_meta.progress
    }

    /// Rendered spec parameters of the scenario.
    pub fn params(&self) -> &str {
        &self.threaded_meta.params
    }

    /// The threaded world's metadata.
    pub fn threaded_meta(&self) -> &ScenarioMeta {
        &self.threaded_meta
    }

    /// The sim world's metadata.
    pub fn sim_meta(&self) -> &ScenarioMeta {
        &self.sim_meta
    }

    /// Drives the threaded backend through [`drive`]: random role-aware
    /// workload, linearizability check, quiescent memory audit.
    ///
    /// # Errors
    ///
    /// The rendered [`crate::drive::DriveError`], if any.
    pub fn run_threaded(&self, cfg: &DriveConfig) -> Result<ScenarioReport, String> {
        (self.threaded)(cfg)
    }

    /// Runs the simulator twin through [`check_sim_object`] on the mirrored
    /// workload under a seeded scheduler: HI audit per the twin's declared
    /// [`SimAudit`](hi_spec::SimAudit) strategy, then linearizability
    /// against the same spec.
    ///
    /// # Errors
    ///
    /// The rendered check failure, if any.
    pub fn check_sim(&self, seed: u64, ops_per_pid: usize) -> Result<SimObjectReport, String> {
        (self.sim)(seed, ops_per_pid)
    }

    /// Pure throughput run of the threaded backend (no history, no checks):
    /// applies `ops_per_handle` operations per handle and returns the number
    /// completed. The unit the `api_throughput` bench measures.
    pub fn run_throughput(&self, ops_per_handle: usize, seed: u64) -> usize {
        (self.throughput)(ops_per_handle, seed)
    }

    /// Rendered spec parameters of the downsized exhaustive instance.
    pub fn small_params(&self) -> &str {
        &self.small_params
    }

    /// Exhaustively certifies the scenario's *downsized* sim instance with
    /// the schedule-space model checker
    /// ([`hi_spec::check_sim_object_exhaustive`]): every schedule of a
    /// small role-mirrored workload, HI-audited at every reachable
    /// permitted configuration and linearized at every distinct maximal
    /// path, with partial-order reduction and configuration dedup doing
    /// the heavy lifting.
    ///
    /// # Errors
    ///
    /// The rendered certification failure, if any.
    pub fn check_exhaustive(&self, cfg: &ExhaustiveConfig) -> Result<ExhaustiveReport, String> {
        (self.exhaustive)(cfg)
    }

    /// Runs the crash/stall sweep ([`hi_spec::check_sim_object_faults`])
    /// over the simulator twin: every role crashed at sampled points of its
    /// own transition count, every role as the sole survivor, every role
    /// stalled mid-run — with the declared [`Progress`] class enforced and
    /// the HI audit re-run at the post-crash observation points.
    ///
    /// # Errors
    ///
    /// The rendered sweep failure, if any.
    pub fn run_fault_sweep(
        &self,
        seed: u64,
        ops_per_pid: usize,
    ) -> Result<FaultSweepReport, String> {
        (self.fault)(seed, ops_per_pid)
    }
}

/// Renders a bounded sim-twin run as the diagnostic attached to a wedged
/// threaded drive: the per-process lanes of the first transitions under the
/// same seed, plus the final sim memory.
fn diagnose_sim<S, M>(sim: fn() -> M, seed: u64, ops_per_pid: usize) -> String
where
    S: EnumerableSpec,
    M: SimObject<S>,
{
    let obj = sim();
    let n = obj.roles().num_handles();
    let mut exec = Executor::new(obj.implementation().clone());
    exec.enable_trace();
    let workload = sim_workload(SimObject::spec(&obj), obj.roles(), ops_per_pid, seed);
    let mut sched = Seeded::new(seed);
    let mut out = String::new();
    match run_workload(
        &mut exec,
        workload,
        &mut sched,
        &mut (),
        DIAGNOSE_TRANSITIONS,
    ) {
        Ok(()) => out.push_str("sim twin drained the mirrored workload under this seed\n"),
        Err(e) => out.push_str(&format!(
            "sim twin stopped after {DIAGNOSE_TRANSITIONS} transitions ({e})\n"
        )),
    }
    if let Some(trace) = exec.trace() {
        out.push_str(&render_lanes(trace, exec.mem(), n));
    }
    out.push_str(&format!("\nfinal sim memory: {:?}", exec.snapshot()));
    out
}

// ---------------------------------------------------------------------------
// Scenario parameters (shared by both worlds of each entry).
// ---------------------------------------------------------------------------

const REG_K: u64 = 5;
const QUEUE_T: u32 = 3;
const QUEUE_CAP: usize = 6;
const LLSC_V: u64 = 8;
const LLSC_N: usize = 3;
const COUNTER_N: usize = 3;
const UREG_K: u64 = 4;
const UREG_N: usize = 2;
const UQUEUE_T: u32 = 3;
const UQUEUE_CAP: usize = 4;
const UQUEUE_N: usize = 3;
const MAXREG_K: u64 = 6;
const SET_T: u32 = 6;
const SET_N: usize = 3;
const HT_T: u32 = 8;
const HT_CAP: usize = 13;
const HT_N: usize = 3;
const HT_DENSE_T: u32 = 6;
const HT_DENSE_CAP: usize = 8;
const HT_DENSE_N: usize = 2;
const SHARD_T: u32 = 8;
const SHARD_S: usize = 4;
const SHARD_BASE: usize = 2;
const SHARD_N: usize = 3;

// Downsized parameters of the exhaustive (model-checked) instances: value
// domains of 2–3 and at most two processes keep every scenario's full
// schedule space within the explorer's budget while still exercising the
// algorithms' real interleavings (overwrites, duplicate rewrites, failed
// CAS retries, helping).
const SMALL_REG_K: u64 = 2;
const SMALL_QUEUE_T: u32 = 2;
const SMALL_QUEUE_CAP: usize = 2;
const SMALL_LLSC_V: u64 = 2;
const SMALL_LLSC_N: usize = 2;
const SMALL_U_N: usize = 2;
const SMALL_UREG_K: u64 = 2;
const SMALL_MAXREG_K: u64 = 2;
const SMALL_SET_T: u32 = 2;
const SMALL_SET_N: usize = 2;
const SMALL_HT_T: u32 = 2;
const SMALL_HT_CAP: usize = 5;
const SMALL_HT_N: usize = 2;
const SMALL_HT_DENSE_T: u32 = 3;
const SMALL_HT_DENSE_CAP: usize = 4;
// base = 1 forces the very first insert into a shard across a capacity
// boundary, so even the model checker's two-op workloads certify a resize.
const SMALL_SHARD_T: u32 = 3;
const SMALL_SHARD_S: usize = 2;
const SMALL_SHARD_BASE: usize = 1;
const SMALL_SHARD_N: usize = 2;

fn reg_spec() -> MultiRegisterSpec {
    MultiRegisterSpec::new(REG_K, 1)
}

fn queue_spec() -> BoundedQueueSpec {
    BoundedQueueSpec::new(QUEUE_T, QUEUE_CAP)
}

fn llsc_spec() -> RLlscSpec {
    RLlscSpec::new(LLSC_V, 0, LLSC_N)
}

fn counter_spec() -> CounterSpec {
    CounterSpec::new(-300, 300, 0)
}

fn small_counter_spec() -> CounterSpec {
    CounterSpec::new(-2, 2, 0)
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// All registered scenarios. Every threaded backend in the workspace is
/// represented, each next to its simulator twin; conformance tests, stress
/// tests and the throughput bench iterate this list instead of hand-writing
/// per-object drivers.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario::of(
            "register/vidyasankar-k5",
            "Algorithm 1: wait-free SWSR register, linearizable, not HI",
            || VidyasankarObject::new(reg_spec()),
            || VidyasankarRegister::new(REG_K, 1),
            || VidyasankarRegister::new(SMALL_REG_K, 1),
        ),
        Scenario::of(
            "register/lockfree-hi-k5",
            "Algorithms 2+3: state-quiescent HI SWSR register, reader lock-free",
            || LockFreeHiObject::new(reg_spec()),
            || LockFreeHiRegister::new(REG_K, 1),
            || LockFreeHiRegister::new(SMALL_REG_K, 1),
        ),
        Scenario::of(
            "register/waitfree-hi-k5",
            "Algorithm 4: quiescent HI SWSR register, wait-free",
            || WaitFreeHiObject::new(reg_spec()),
            || WaitFreeHiRegister::new(REG_K, 1),
            || WaitFreeHiRegister::new(SMALL_REG_K, 1),
        ),
        Scenario::of(
            "queue/positional-t3",
            "§5.4 companion: state-quiescent HI queue with lock-free Peek",
            || QueueObject::new(queue_spec()),
            || PositionalQueue::new(QUEUE_T, QUEUE_CAP),
            || PositionalQueue::new(SMALL_QUEUE_T, SMALL_QUEUE_CAP),
        ),
        Scenario::of(
            "register/max-k6",
            "§5.1 max register: wait-free, state-quiescent HI outside C_t",
            || MaxRegisterObject::new(MaxRegisterSpec::new(MAXREG_K)),
            || MaxRegister::new(MAXREG_K),
            || MaxRegister::new(SMALL_MAXREG_K),
        ),
        Scenario::of(
            "set/hi-t6-n3",
            "§5.1 set: one primitive per op, perfect HI, every role symmetric",
            || HiSetObject::new(SetSpec::new(SET_T), SET_N),
            || HiSet::new(SET_T, SET_N),
            || HiSet::new(SMALL_SET_T, SMALL_SET_N),
        ),
        Scenario::of(
            "hashtable/robinhood-t8-n3",
            "follow-up paper direction: phase-free Robin Hood HI hash table",
            || HashTableObject::new(HashSetSpec::new(HT_T), HT_CAP, HT_N),
            || SimHiHashTable::new(HT_T, HT_CAP, HT_N),
            || SimHiHashTable::new(SMALL_HT_T, SMALL_HT_CAP, SMALL_HT_N),
        ),
        Scenario::of(
            "hashtable/robinhood-dense-t6-n2",
            "the same table at 0.75 max load factor: long probe chains, heavy shifting",
            || HashTableObject::new(HashSetSpec::new(HT_DENSE_T), HT_DENSE_CAP, HT_DENSE_N),
            || SimHiHashTable::new(HT_DENSE_T, HT_DENSE_CAP, HT_DENSE_N),
            || SimHiHashTable::new(SMALL_HT_DENSE_T, SMALL_HT_DENSE_CAP, SMALL_HT_N),
        ),
        Scenario::of(
            "hashtable/sharded-s4-t8",
            "scale-out: sharded table-of-tables with online capacity-changing resize",
            || ShardedTableObject::new(HashSetSpec::new(SHARD_T), SHARD_S, SHARD_BASE, SHARD_N),
            || SimShardedTable::new(SHARD_T, SHARD_S, SHARD_BASE, SHARD_N),
            || {
                SimShardedTable::new(
                    SMALL_SHARD_T,
                    SMALL_SHARD_S,
                    SMALL_SHARD_BASE,
                    SMALL_SHARD_N,
                )
            },
        ),
        Scenario::of(
            "llsc/packed-v8-n3",
            "Algorithm 6: releasable LL/SC on one word, perfect HI",
            || LlscObject::new(llsc_spec()),
            || SimRLlsc::new(LLSC_V, 0, LLSC_N),
            || SimRLlsc::new(SMALL_LLSC_V, 0, SMALL_LLSC_N),
        ),
        Scenario::of(
            "universal/counter-n3",
            "Algorithm 5 over a bounded counter: wait-free, state-quiescent HI",
            || UniversalObject::new(counter_spec(), COUNTER_N),
            || SimUniversal::new(counter_spec(), COUNTER_N),
            || SimUniversal::new(small_counter_spec(), SMALL_U_N),
        ),
        Scenario::of(
            "universal/register-k4-n2",
            "Algorithm 5 over a multi-valued register (multi-writer, unlike §4)",
            || UniversalObject::new(MultiRegisterSpec::new(UREG_K, 1), UREG_N),
            || SimUniversal::new(MultiRegisterSpec::new(UREG_K, 1), UREG_N),
            || SimUniversal::new(MultiRegisterSpec::new(SMALL_UREG_K, 1), SMALL_U_N),
        ),
        Scenario::of(
            "universal/queue-t3-n3",
            "Algorithm 5 over the bounded queue: every role symmetric",
            || UniversalObject::new(BoundedQueueSpec::new(UQUEUE_T, UQUEUE_CAP), UQUEUE_N),
            || SimUniversal::new(BoundedQueueSpec::new(UQUEUE_T, UQUEUE_CAP), UQUEUE_N),
            || {
                SimUniversal::new(
                    BoundedQueueSpec::new(SMALL_QUEUE_T, SMALL_QUEUE_CAP),
                    SMALL_U_N,
                )
            },
        ),
        Scenario::of(
            "universal/counter-no-release",
            "§6.1 ablation: Algorithm 5 without RL — linearizable but not HI",
            || UniversalObject::without_release(counter_spec(), COUNTER_N),
            || SimUniversal::without_release(counter_spec(), COUNTER_N),
            || SimUniversal::without_release(small_counter_spec(), SMALL_U_N),
        ),
    ]
}

/// Looks up a scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}
