//! A registry of named object×spec scenarios, each drivable through the
//! unified facade *and* cross-checkable against its simulator twin.
//!
//! A scenario bundles a threaded backend (driven via [`crate::drive`]) with
//! the matching `hi_sim` implementation of the *same* [`hi_core::ObjectSpec`]
//! (driven through `hi_spec`'s harness), so one parameterized suite can
//! assert that both backends linearize against the same specification and
//! keep their memory canonical. Adding a workload is one registry entry,
//! not a new test file.

use hi_core::objects::{
    BoundedQueueSpec, CounterSpec, HashSetSpec, MaxRegisterOp, MaxRegisterSpec, MultiRegisterSpec,
    QueueOp, RegisterOp, SetSpec,
};
use hi_core::{EnumerableSpec, ObjectSpec};
use hi_hashtable::SimHiHashTable;
use hi_llsc::{RLlscSpec, SimRLlsc};
use hi_queue::PositionalQueue;
use hi_registers::{
    HiSet, LockFreeHiRegister, MaxRegister, VidyasankarRegister, WaitFreeHiRegister,
};
use hi_sim::{run_workload, Executor, Implementation, Seeded, StepObserver, Workload};
use hi_spec::{check_run, check_run_single_mutator, linearize, LinOptions, ObservationModel};
use hi_universal::SimUniversal;

use crate::adapters::{
    HashTableObject, HiSetObject, LlscObject, LockFreeHiObject, MaxRegisterObject, QueueObject,
    UniversalObject, VidyasankarObject, WaitFreeHiObject,
};
use crate::drive::{drive, handle_seed, random_script, throughput, DriveConfig};
use crate::object::ConcurrentObject;

/// Step budget of the simulator twins (generous: the seeded scheduler must
/// get every lock-free retry loop through a bounded workload).
const SIM_MAX_STEPS: u64 = 2_000_000;

/// Summary of one threaded scenario run, monomorphic so the registry can be
/// iterated without knowing each scenario's spec types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScenarioReport {
    /// Completed operations across all handles.
    pub ops: usize,
    /// Whether the quiescent memory audit ran (false only for non-HI
    /// backends).
    pub audited: bool,
}

/// A named object×spec configuration: a threaded backend behind
/// [`ConcurrentObject`] plus its simulator twin.
pub struct Scenario {
    /// Stable name, `family/variant` style (e.g. `"register/waitfree-hi-k5"`).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    threaded: fn(&DriveConfig) -> Result<ScenarioReport, String>,
    sim: fn(u64, usize) -> Result<(), String>,
    throughput: fn(usize, u64) -> usize,
}

impl Scenario {
    /// Drives the threaded backend through [`drive`]: random workload,
    /// linearizability check, quiescent memory audit.
    ///
    /// # Errors
    ///
    /// The rendered [`crate::drive::DriveError`], if any.
    pub fn run_threaded(&self, cfg: &DriveConfig) -> Result<ScenarioReport, String> {
        (self.threaded)(cfg)
    }

    /// Runs the simulator twin on an equivalent workload under a seeded
    /// scheduler and checks it linearizes against the same spec (with HI
    /// monitoring where the implementation promises it).
    ///
    /// # Errors
    ///
    /// The rendered check failure, if any.
    pub fn check_sim(&self, seed: u64, ops_per_pid: usize) -> Result<(), String> {
        (self.sim)(seed, ops_per_pid)
    }

    /// Pure throughput run of the threaded backend (no history, no checks):
    /// applies `ops_per_handle` operations per handle and returns the number
    /// completed. The unit the `api_throughput` bench measures.
    pub fn run_throughput(&self, ops_per_handle: usize, seed: u64) -> usize {
        (self.throughput)(ops_per_handle, seed)
    }
}

/// Runs `drive` on any facade object and flattens the report.
fn drive_report<S, O>(obj: &mut O, cfg: &DriveConfig) -> Result<ScenarioReport, String>
where
    S: EnumerableSpec,
    S::Op: Send,
    S::Resp: Send,
    O: ConcurrentObject<S>,
{
    let report = drive(obj, cfg).map_err(|e| e.to_string())?;
    Ok(ScenarioReport {
        ops: report.history.records().len(),
        audited: report.audited,
    })
}

/// The register menus under the SWSR role convention: pid 0 writes, pid 1
/// reads.
fn register_menus(k: u64) -> [Vec<RegisterOp>; 2] {
    [
        (1..=k).map(RegisterOp::Write).collect(),
        vec![RegisterOp::Read],
    ]
}

/// The queue menus under the mutator/observer convention.
fn queue_menus(t: u32) -> [Vec<QueueOp>; 2] {
    let mut mutate: Vec<QueueOp> = (1..=t).map(QueueOp::Enqueue).collect();
    mutate.push(QueueOp::Dequeue);
    [mutate, vec![QueueOp::Peek]]
}

/// Builds the sim workload whose per-pid scripts mirror the threaded
/// driver's generation (same menus, same per-handle seeds).
fn sim_workload<S: ObjectSpec>(menus: &[Vec<S::Op>], ops_per_pid: usize, seed: u64) -> Workload<S> {
    let mut w = Workload::new(menus.len());
    for (pid, menu) in menus.iter().enumerate() {
        for op in random_script(menu, ops_per_pid, handle_seed(seed, pid)) {
            w.push(pid, op);
        }
    }
    w
}

/// Linearizability-only sim check (for non-HI implementations where memory
/// monitoring would be meaningless).
fn sim_lin_only<S, I>(
    imp: &I,
    menus: &[Vec<S::Op>],
    seed: u64,
    ops_per_pid: usize,
) -> Result<(), String>
where
    S: ObjectSpec,
    I: Implementation<S>,
{
    let mut exec = Executor::new(imp.clone());
    let workload = sim_workload::<S>(menus, ops_per_pid, seed);
    run_workload(
        &mut exec,
        workload,
        &mut Seeded::new(seed),
        &mut (),
        SIM_MAX_STEPS,
    )
    .map_err(|e| e.to_string())?;
    linearize(exec.spec(), exec.history(), &LinOptions::default())
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Full single-mutator sim check: linearizability + HI monitoring under
/// `model`.
fn sim_single_mutator<S, I>(
    imp: &I,
    menus: &[Vec<S::Op>],
    model: ObservationModel,
    seed: u64,
    ops_per_pid: usize,
) -> Result<(), String>
where
    S: ObjectSpec,
    I: Implementation<S>,
{
    let workload = sim_workload::<S>(menus, ops_per_pid, seed);
    check_run_single_mutator(imp, workload, &mut Seeded::new(seed), model, SIM_MAX_STEPS)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// State-quiescent canonical-slot audit of the hash table sim twin: at every
/// state-quiescent point the slot array (the memory representation proper;
/// cell 0 is the seqlock word) must equal the canonical Robin Hood layout of
/// the decoded key set. This is a direct-canonicity check, strictly stronger
/// than `HiMonitor`'s same-state-same-memory comparison, and it is what lets
/// the audit exclude the synchronization word with the same justification as
/// the threaded backend's `mem_snapshot`.
struct CanonicalSlotsObserver {
    imp: SimHiHashTable,
    points: u64,
    violation: Option<String>,
}

impl StepObserver<HashSetSpec, SimHiHashTable> for CanonicalSlotsObserver {
    fn observe(&mut self, exec: &Executor<HashSetSpec, SimHiHashTable>) {
        if self.violation.is_some() || !exec.is_state_quiescent() {
            return;
        }
        self.points += 1;
        let snap = exec.snapshot();
        let state = self.imp.decode_state(&snap);
        let canonical = self.imp.canonical_slots(state);
        if self.imp.slots_of(&snap) != canonical.as_slice() {
            self.violation = Some(format!(
                "state-quiescent slots {:?} are not the canonical layout {:?} of state {:#b}",
                self.imp.slots_of(&snap),
                canonical,
                state
            ));
        }
    }
}

/// Sim twin of a hash-table scenario: the slot-level step machine under the
/// seeded scheduler, audited for canonical slots at every state-quiescent
/// point, then linearized against [`HashSetSpec`].
fn sim_hashtable(
    t: u32,
    capacity: usize,
    n: usize,
    seed: u64,
    ops_per_pid: usize,
) -> Result<(), String> {
    let imp = SimHiHashTable::new(t, capacity, n);
    let spec = HashSetSpec::new(t);
    let menus: Vec<Vec<_>> = (0..n).map(|_| spec.ops()).collect();
    let workload = sim_workload::<HashSetSpec>(&menus, ops_per_pid, seed);
    let mut exec = Executor::new(imp.clone());
    let mut observer = CanonicalSlotsObserver {
        imp,
        points: 0,
        violation: None,
    };
    run_workload(
        &mut exec,
        workload,
        &mut Seeded::new(seed),
        &mut observer,
        SIM_MAX_STEPS,
    )
    .map_err(|e| e.to_string())?;
    if let Some(v) = observer.violation {
        return Err(v);
    }
    if observer.points == 0 {
        return Err("no state-quiescent point was audited".to_string());
    }
    linearize(exec.spec(), exec.history(), &LinOptions::default())
        .map(|_| ())
        .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Scenario parameters (shared by both backends of each entry).
// ---------------------------------------------------------------------------

const REG_K: u64 = 5;
const QUEUE_T: u32 = 3;
const QUEUE_CAP: usize = 6;
const LLSC_V: u64 = 8;
const LLSC_N: usize = 3;
const COUNTER_N: usize = 3;
const UREG_K: u64 = 4;
const UREG_N: usize = 2;
const UQUEUE_N: usize = 3;
const MAXREG_K: u64 = 6;
const SET_T: u32 = 6;
const SET_N: usize = 3;
const HT_T: u32 = 8;
const HT_CAP: usize = 13;
const HT_N: usize = 3;
const HT_DENSE_T: u32 = 6;
const HT_DENSE_CAP: usize = 8;
const HT_DENSE_N: usize = 2;

fn reg_spec() -> MultiRegisterSpec {
    MultiRegisterSpec::new(REG_K, 1)
}

fn queue_spec() -> BoundedQueueSpec {
    BoundedQueueSpec::new(QUEUE_T, QUEUE_CAP)
}

fn llsc_spec() -> RLlscSpec {
    RLlscSpec::new(LLSC_V, 0, LLSC_N)
}

fn counter_spec() -> CounterSpec {
    CounterSpec::new(-300, 300, 0)
}

/// The max-register menus under the SWSR role convention: pid 0 writes,
/// pid 1 reads.
fn max_register_menus(k: u64) -> [Vec<MaxRegisterOp>; 2] {
    [
        (1..=k).map(MaxRegisterOp::WriteMax).collect(),
        vec![MaxRegisterOp::ReadMax],
    ]
}

fn llsc_menus() -> Vec<Vec<hi_llsc::RLlscOp>> {
    let spec = llsc_spec();
    let all = spec.ops();
    (0..LLSC_N)
        .map(|pid| {
            all.iter()
                .filter(|op| op.pid().map_or(true, |p| p == pid))
                .copied()
                .collect()
        })
        .collect()
}

fn universal_menus<S: EnumerableSpec>(spec: &S, n: usize) -> Vec<Vec<S::Op>> {
    (0..n).map(|_| spec.ops()).collect()
}

/// Sim twin of a universal scenario: Algorithm 5 step machines, HI
/// monitored at state-quiescent points with the head-decode oracle.
fn sim_universal<S: EnumerableSpec>(
    spec: S,
    n: usize,
    seed: u64,
    ops_per_pid: usize,
) -> Result<(), String> {
    let imp = SimUniversal::new(spec.clone(), n);
    let workload = sim_workload::<S>(&universal_menus(&spec, n), ops_per_pid, seed);
    let oracle_imp = imp.clone();
    check_run(
        &imp,
        workload,
        &mut Seeded::new(seed),
        ObservationModel::StateQuiescent,
        SIM_MAX_STEPS,
        move |exec| oracle_imp.abstract_state(&exec.snapshot()),
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// All registered scenarios. Every threaded backend in the workspace is
/// represented; conformance tests, stress tests and the throughput bench
/// iterate this list instead of hand-writing per-object drivers.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "register/vidyasankar-k5",
            about: "Algorithm 1: wait-free SWSR register, linearizable, not HI",
            threaded: |cfg| drive_report(&mut VidyasankarObject::new(reg_spec()), cfg),
            throughput: |ops, seed| throughput(&mut VidyasankarObject::new(reg_spec()), ops, seed),
            sim: |seed, ops| {
                sim_lin_only(
                    &VidyasankarRegister::new(REG_K, 1),
                    &register_menus(REG_K),
                    seed,
                    ops,
                )
            },
        },
        Scenario {
            name: "register/lockfree-hi-k5",
            about: "Algorithms 2+3: state-quiescent HI SWSR register, reader lock-free",
            threaded: |cfg| drive_report(&mut LockFreeHiObject::new(reg_spec()), cfg),
            throughput: |ops, seed| throughput(&mut LockFreeHiObject::new(reg_spec()), ops, seed),
            sim: |seed, ops| {
                sim_single_mutator(
                    &LockFreeHiRegister::new(REG_K, 1),
                    &register_menus(REG_K),
                    ObservationModel::StateQuiescent,
                    seed,
                    ops,
                )
            },
        },
        Scenario {
            name: "register/waitfree-hi-k5",
            about: "Algorithm 4: quiescent HI SWSR register, wait-free",
            threaded: |cfg| drive_report(&mut WaitFreeHiObject::new(reg_spec()), cfg),
            throughput: |ops, seed| throughput(&mut WaitFreeHiObject::new(reg_spec()), ops, seed),
            sim: |seed, ops| {
                sim_single_mutator(
                    &WaitFreeHiRegister::new(REG_K, 1),
                    &register_menus(REG_K),
                    ObservationModel::Quiescent,
                    seed,
                    ops,
                )
            },
        },
        Scenario {
            name: "queue/positional-t3",
            about: "§5.4 companion: state-quiescent HI queue with lock-free Peek",
            threaded: |cfg| drive_report(&mut QueueObject::new(queue_spec()), cfg),
            throughput: |ops, seed| throughput(&mut QueueObject::new(queue_spec()), ops, seed),
            sim: |seed, ops| {
                sim_single_mutator(
                    &PositionalQueue::new(QUEUE_T, QUEUE_CAP),
                    &queue_menus(QUEUE_T),
                    ObservationModel::StateQuiescent,
                    seed,
                    ops,
                )
            },
        },
        Scenario {
            name: "register/max-k6",
            about: "§5.1 max register: wait-free, state-quiescent HI outside C_t",
            threaded: |cfg| {
                drive_report(
                    &mut MaxRegisterObject::new(MaxRegisterSpec::new(MAXREG_K)),
                    cfg,
                )
            },
            throughput: |ops, seed| {
                throughput(
                    &mut MaxRegisterObject::new(MaxRegisterSpec::new(MAXREG_K)),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| {
                sim_single_mutator(
                    &MaxRegister::new(MAXREG_K),
                    &max_register_menus(MAXREG_K),
                    ObservationModel::StateQuiescent,
                    seed,
                    ops,
                )
            },
        },
        Scenario {
            name: "set/hi-t6-n3",
            about: "§5.1 set: one primitive per op, perfect HI, every role symmetric",
            threaded: |cfg| drive_report(&mut HiSetObject::new(SetSpec::new(SET_T), SET_N), cfg),
            throughput: |ops, seed| {
                throughput(&mut HiSetObject::new(SetSpec::new(SET_T), SET_N), ops, seed)
            },
            sim: |seed, ops| {
                let imp = HiSet::new(SET_T, SET_N);
                let workload = sim_workload::<SetSpec>(
                    &universal_menus(&SetSpec::new(SET_T), SET_N),
                    ops,
                    seed,
                );
                check_run(
                    &imp,
                    workload,
                    &mut Seeded::new(seed),
                    ObservationModel::Perfect,
                    SIM_MAX_STEPS,
                    // Perfect HI: the characteristic vector *is* the state.
                    |exec| hi_core::cells::mask_of_bits(&exec.snapshot()),
                )
                .map(|_| ())
                .map_err(|e| e.to_string())
            },
        },
        Scenario {
            name: "hashtable/robinhood-t8-n3",
            about: "follow-up paper direction: phase-free Robin Hood HI hash table",
            threaded: |cfg| {
                drive_report(
                    &mut HashTableObject::new(HashSetSpec::new(HT_T), HT_CAP, HT_N),
                    cfg,
                )
            },
            throughput: |ops, seed| {
                throughput(
                    &mut HashTableObject::new(HashSetSpec::new(HT_T), HT_CAP, HT_N),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| sim_hashtable(HT_T, HT_CAP, HT_N, seed, ops),
        },
        Scenario {
            name: "hashtable/robinhood-dense-t6-n2",
            about: "the same table at 0.75 max load factor: long probe chains, heavy shifting",
            threaded: |cfg| {
                drive_report(
                    &mut HashTableObject::new(
                        HashSetSpec::new(HT_DENSE_T),
                        HT_DENSE_CAP,
                        HT_DENSE_N,
                    ),
                    cfg,
                )
            },
            throughput: |ops, seed| {
                throughput(
                    &mut HashTableObject::new(
                        HashSetSpec::new(HT_DENSE_T),
                        HT_DENSE_CAP,
                        HT_DENSE_N,
                    ),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| sim_hashtable(HT_DENSE_T, HT_DENSE_CAP, HT_DENSE_N, seed, ops),
        },
        Scenario {
            name: "llsc/packed-v8-n3",
            about: "Algorithm 6: releasable LL/SC on one word, perfect HI",
            threaded: |cfg| drive_report(&mut LlscObject::new(llsc_spec()), cfg),
            throughput: |ops, seed| throughput(&mut LlscObject::new(llsc_spec()), ops, seed),
            sim: |seed, ops| {
                let imp = SimRLlsc::new(LLSC_V, 0, LLSC_N);
                let oracle_imp = imp.clone();
                let workload = sim_workload::<RLlscSpec>(&llsc_menus(), ops, seed);
                check_run(
                    &imp,
                    workload,
                    &mut Seeded::new(seed),
                    ObservationModel::Perfect,
                    SIM_MAX_STEPS,
                    move |exec| oracle_imp.decode(&exec.snapshot()),
                )
                .map(|_| ())
                .map_err(|e| e.to_string())
            },
        },
        Scenario {
            name: "universal/counter-n3",
            about: "Algorithm 5 over a bounded counter: wait-free, state-quiescent HI",
            threaded: |cfg| drive_report(&mut UniversalObject::new(counter_spec(), COUNTER_N), cfg),
            throughput: |ops, seed| {
                throughput(
                    &mut UniversalObject::new(counter_spec(), COUNTER_N),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| sim_universal(counter_spec(), COUNTER_N, seed, ops),
        },
        Scenario {
            name: "universal/register-k4-n2",
            about: "Algorithm 5 over a multi-valued register (multi-writer, unlike §4)",
            threaded: |cfg| {
                drive_report(
                    &mut UniversalObject::new(MultiRegisterSpec::new(UREG_K, 1), UREG_N),
                    cfg,
                )
            },
            throughput: |ops, seed| {
                throughput(
                    &mut UniversalObject::new(MultiRegisterSpec::new(UREG_K, 1), UREG_N),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| sim_universal(MultiRegisterSpec::new(UREG_K, 1), UREG_N, seed, ops),
        },
        Scenario {
            name: "universal/queue-t3-n3",
            about: "Algorithm 5 over the bounded queue: every role symmetric",
            threaded: |cfg| {
                drive_report(
                    &mut UniversalObject::new(BoundedQueueSpec::new(3, 4), UQUEUE_N),
                    cfg,
                )
            },
            throughput: |ops, seed| {
                throughput(
                    &mut UniversalObject::new(BoundedQueueSpec::new(3, 4), UQUEUE_N),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| sim_universal(BoundedQueueSpec::new(3, 4), UQUEUE_N, seed, ops),
        },
        Scenario {
            name: "universal/counter-no-release",
            about: "§6.1 ablation: Algorithm 5 without RL — linearizable but not HI",
            threaded: |cfg| {
                drive_report(
                    &mut UniversalObject::without_release(counter_spec(), COUNTER_N),
                    cfg,
                )
            },
            throughput: |ops, seed| {
                throughput(
                    &mut UniversalObject::without_release(counter_spec(), COUNTER_N),
                    ops,
                    seed,
                )
            },
            sim: |seed, ops| {
                // The ablation leaks memory, so only linearizability is checked.
                let imp = SimUniversal::without_release(counter_spec(), COUNTER_N);
                sim_lin_only(
                    &imp,
                    &universal_menus(&counter_spec(), COUNTER_N),
                    seed,
                    ops,
                )
            },
        },
    ]
}

/// Looks up a scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}
