//! The unified object facade: one trait for every threaded backend.

use hi_core::ObjectSpec;

// The role discipline, HI classification and progress classification now
// live in `hi_core`, where the simulator twin (`hi_spec::SimObject`) shares
// them; re-exported here so the facade's historical paths (`hi_api::Roles`,
// `hi_api::HiLevel`) keep working.
pub use hi_core::{HiLevel, Progress, Roles};

/// One process's capability on a [`ConcurrentObject`]: apply operations of
/// the object's [`ObjectSpec`] and get responses back.
///
/// Handles are `Send` (they move into threads) but not `Sync` or `Clone`:
/// a handle is a *role*, and the single-mutator algorithms are correct only
/// because their mutator handle cannot be duplicated.
pub trait ObjectHandle<S: ObjectSpec> {
    /// Applies `op` and returns its response.
    ///
    /// # Panics
    ///
    /// Panics if this handle's role does not support `op` (see
    /// [`supports`](ObjectHandle::supports)).
    fn apply(&mut self, op: S::Op) -> S::Resp;

    /// Whether this handle's role may invoke `op`. Generic drivers use this
    /// to build per-handle operation menus.
    fn supports(&self, op: &S::Op) -> bool;
}

/// What one online (non-barrier) history-independence probe observed: a
/// point-in-time read of the object's memory, judged against the canonical
/// form of the abstract state it decodes to.
///
/// Only meaningful for [`HiLevel::Perfect`] implementations — the paper's
/// Definition 5 promises canonical memory in *every* configuration, so a
/// memory-observing adversary (and this probe) may look mid-operation.
/// Implementations of lower levels never hand out a probe: observing them
/// mid-flight would report spurious violations the spec does not forbid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeVerdict {
    /// Whether the observed memory is the canonical representation of a
    /// legal abstract state.
    pub canonical: bool,
    /// The observed memory, cell reads in `mem_snapshot` order.
    pub mem: Vec<u64>,
    /// The decoded abstract state, rendered (diagnostic).
    pub state: String,
}

/// A sampling observer over a live [`HiLevel::Perfect`] object: reads the
/// memory representation at an arbitrary configuration — concurrent
/// operations in full flight — and audits it for canonicality.
///
/// Obtained from [`ConcurrentObject::handles_with_probe`] alongside the
/// role handles; the probe borrows the object for the same region the
/// handles do, so it is exactly as long-lived as the epoch it observes.
/// Sampling is safe at any moment by the Perfect-HI contract; each
/// implementation's closure does its own per-cell atomic reads.
pub struct OnlineProbe<'a> {
    sample: Box<dyn Fn() -> ProbeVerdict + Send + 'a>,
}

impl<'a> OnlineProbe<'a> {
    /// Wraps an implementation's sampling closure.
    pub fn new(sample: impl Fn() -> ProbeVerdict + Send + 'a) -> Self {
        OnlineProbe {
            sample: Box::new(sample),
        }
    }

    /// Takes one sample: read memory now, decode, audit.
    pub fn sample(&self) -> ProbeVerdict {
        (self.sample)()
    }
}

impl std::fmt::Debug for OnlineProbe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineProbe").finish_non_exhaustive()
    }
}

/// The result of one **sampled** big-domain HI audit: `k` randomly chosen
/// segments of the memory representation checked exhaustively against
/// their canonical images, the rest spot-checked for the cheap structural
/// invariants (capacity words, routing, displacement sanity) without
/// recomputing canonical layouts.
///
/// Offered by implementations whose full canonical comparison stops being
/// a sensible drain-barrier check at scale (see
/// [`ConcurrentObject::sampled_audit`]); the soak harness prefers it over
/// the full-image audit exactly when the implementation offers it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SampledAudit {
    /// How many independently auditable segments (shards) the memory
    /// representation decomposes into.
    pub shards_total: usize,
    /// How many of them were compared exhaustively against their canonical
    /// image this sample.
    pub shards_exhaustive: usize,
    /// Memory cells covered by the structural spot checks in the remaining
    /// segments.
    pub cells_spot_checked: usize,
    /// The first violation found, rendered — `None` when the sample passed.
    pub failure: Option<String>,
}

impl SampledAudit {
    /// Whether the sample found no violation.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Cumulative background-maintenance counters of an implementation that
/// reorganizes its own memory (e.g. online capacity migrations): how often
/// it happened and how long operations stalled inside it. Totals since
/// construction; callers diff snapshots to attribute maintenance cost to
/// an epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MaintenanceSnapshot {
    /// Completed reorganizations (for the sharded table: capacity
    /// migrations, grows and shrinks alike).
    pub resizes: u64,
    /// Total wall time operations spent performing reorganizations.
    pub resize_pause: std::time::Duration,
}

/// A concurrent implementation of an abstract object `(Q, q0, O, R, Δ)` on
/// real threads, with a uniform surface for construction, operation
/// application, and quiescent-point history-independence auditing.
///
/// Every threaded backend in this workspace implements this trait via an
/// adapter in [`crate::adapters`], which is what lets the generic driver
/// ([`crate::drive`]) and the scenario registry ([`crate::registry`]) treat
/// Algorithm 1 registers and the Algorithm 5 universal object identically.
///
/// # Example
///
/// The universal construction over a counter, driven purely through the
/// trait (mirroring the `AtomicUniversal` doctest it replaces):
///
/// ```
/// use hi_api::{ConcurrentObject, ObjectHandle, UniversalObject};
/// use hi_core::objects::{CounterOp, CounterResp, CounterSpec};
///
/// let mut counter = UniversalObject::new(CounterSpec::new(0, 100, 0), 2);
/// {
///     let mut handles = counter.handles();
///     let mut h1 = handles.pop().unwrap();
///     let mut h0 = handles.pop().unwrap();
///     h0.apply(CounterOp::Inc);
///     h1.apply(CounterOp::Inc);
///     assert_eq!(h0.apply(CounterOp::Read), CounterResp::Value(2));
/// }
/// assert_eq!(counter.abstract_state(), 2);
/// assert_eq!(
///     Some(counter.mem_snapshot()),
///     counter.canonical(&2),
///     "quiescent memory is the canonical representation of 2"
/// );
/// ```
pub trait ConcurrentObject<S: ObjectSpec> {
    /// The per-role handle type. Handles borrow the object, so all handles
    /// must be dropped before the object is observed or re-split.
    type Handle<'a>: ObjectHandle<S> + Send
    where
        Self: 'a;

    /// The object's sequential specification.
    fn spec(&self) -> &S;

    /// The role discipline of this implementation.
    fn roles(&self) -> Roles;

    /// The history-independence guarantee of this implementation.
    fn hi_level(&self) -> HiLevel;

    /// The progress guarantee of this implementation — what a crashed
    /// process is allowed to break. The fault checker enforces the declared
    /// class on the simulator twin (`hi_spec::check_sim_object_faults`), and
    /// the conformance suite asserts both worlds declare the same class.
    fn progress(&self) -> Progress;

    /// Hands out one handle per role ([`Roles::num_handles`] of them, in
    /// role order). The `&mut` receiver proves quiescence — no handle from
    /// an earlier split is outstanding — so re-splitting mid-lifetime is
    /// sound: adapters reconstruct any mutator-local state from the
    /// (canonical) quiescent memory.
    fn handles(&mut self) -> Vec<Self::Handle<'_>>;

    /// Hands out the role handles *plus* an [`OnlineProbe`] when this
    /// implementation is [`HiLevel::Perfect`] — i.e. when its memory is
    /// canonical in every configuration, so a non-barrier observer may
    /// sample it while the handles are live. The default declines the
    /// probe, which is the honest answer for every lower [`HiLevel`]:
    /// their contract only fixes memory at (state-)quiescent points, and
    /// a mid-flight sample would report violations the spec permits.
    fn handles_with_probe(&mut self) -> (Vec<Self::Handle<'_>>, Option<OnlineProbe<'_>>) {
        (self.handles(), None)
    }

    /// `mem(C)`: the object's memory representation, one `u64` per base
    /// object, in a fixed per-implementation order. Cell reads are atomic
    /// but the vector is not an atomic snapshot; it equals `mem(C)` only at
    /// configurations the object's [`HiLevel`] permits observing.
    fn mem_snapshot(&self) -> Vec<u64>;

    /// The canonical representation of abstract state `state` under
    /// [`mem_snapshot`](ConcurrentObject::mem_snapshot), fixed at
    /// initialization (Proposition 3). `None` if the implementation fixes no
    /// canonical form (i.e. [`HiLevel::NotHi`]).
    fn canonical(&self, state: &S::State) -> Option<Vec<u64>>;

    /// The object's current abstract state, decoded from memory. Only
    /// meaningful at quiescent points (the `&self` receiver cannot enforce
    /// this; callers of a live object must pause their handles first).
    fn abstract_state(&self) -> S::State;

    /// A **sampled** audit for big-domain implementations: `Some` when the
    /// implementation's memory decomposes into independently auditable
    /// segments *and* its domain is large enough that the full
    /// `mem_snapshot` vs [`canonical`](ConcurrentObject::canonical)
    /// comparison stops being the sensible barrier check. Like
    /// [`abstract_state`](ConcurrentObject::abstract_state), only
    /// meaningful at (state-)quiescent points. `seed` drives the segment
    /// selection, so repeated barriers sample different segments.
    ///
    /// The default declines — the honest answer for every implementation
    /// whose full canonical image is small enough to compare outright.
    fn sampled_audit(&self, _seed: u64) -> Option<SampledAudit> {
        None
    }

    /// Cumulative background-maintenance counters, `Some` only for
    /// implementations that reorganize their own memory (e.g. online
    /// resize). The soak harness diffs snapshots across epochs to
    /// attribute maintenance pauses in its metrics.
    fn maintenance(&self) -> Option<MaintenanceSnapshot> {
        None
    }
}
