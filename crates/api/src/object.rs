//! The unified object facade: one trait for every threaded backend.

use hi_core::ObjectSpec;

/// How many handles an object hands out, and what each may do.
///
/// The paper's algorithms fall into two disciplines: the §4/§5 constructions
/// are *single-writer single-reader* (their correctness proofs lean on the
/// mutator being alone), while Algorithm 5 is symmetric over `n` processes.
/// The facade keeps the by-construction discipline visible so generic
/// drivers route operations only to handles that may perform them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Roles {
    /// Exactly two handles: handle 0 is the single mutator (writer), handle
    /// 1 the single observer (reader). Covers the SWSR registers and the
    /// positional queue (whose "writer" is the enqueue/dequeue mutator and
    /// "reader" the peeker).
    SingleWriterSingleReader,
    /// `n` symmetric handles; every handle may invoke every operation.
    MultiProcess {
        /// The number of processes sharing the object.
        n: usize,
    },
}

impl Roles {
    /// The number of handles [`ConcurrentObject::handles`] returns.
    pub fn num_handles(&self) -> usize {
        match self {
            Roles::SingleWriterSingleReader => 2,
            Roles::MultiProcess { n } => *n,
        }
    }
}

/// The history-independence guarantee a backend provides, i.e. at which
/// configurations [`ConcurrentObject::mem_snapshot`] must equal
/// [`ConcurrentObject::canonical`] of the abstract state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum HiLevel {
    /// No guarantee: the memory may leak operation history (Algorithm 1).
    NotHi,
    /// Canonical whenever no operation at all is pending (Definition 8,
    /// Algorithm 4).
    Quiescent,
    /// Canonical whenever no *state-changing* operation is pending
    /// (Definition 7; Algorithms 2+3, the positional queue, Algorithm 5).
    StateQuiescent,
    /// Canonical in every configuration (Definition 5, Algorithm 6).
    Perfect,
}

impl HiLevel {
    /// Whether a quiescent-point audit (`mem_snapshot == canonical`) is
    /// meaningful for this level. Every level except [`HiLevel::NotHi`]
    /// promises canonical memory at full quiescence.
    pub fn auditable(&self) -> bool {
        *self != HiLevel::NotHi
    }
}

/// One process's capability on a [`ConcurrentObject`]: apply operations of
/// the object's [`ObjectSpec`] and get responses back.
///
/// Handles are `Send` (they move into threads) but not `Sync` or `Clone`:
/// a handle is a *role*, and the single-mutator algorithms are correct only
/// because their mutator handle cannot be duplicated.
pub trait ObjectHandle<S: ObjectSpec> {
    /// Applies `op` and returns its response.
    ///
    /// # Panics
    ///
    /// Panics if this handle's role does not support `op` (see
    /// [`supports`](ObjectHandle::supports)).
    fn apply(&mut self, op: S::Op) -> S::Resp;

    /// Whether this handle's role may invoke `op`. Generic drivers use this
    /// to build per-handle operation menus.
    fn supports(&self, op: &S::Op) -> bool;
}

/// A concurrent implementation of an abstract object `(Q, q0, O, R, Δ)` on
/// real threads, with a uniform surface for construction, operation
/// application, and quiescent-point history-independence auditing.
///
/// Every threaded backend in this workspace implements this trait via an
/// adapter in [`crate::adapters`], which is what lets the generic driver
/// ([`crate::drive`]) and the scenario registry ([`crate::registry`]) treat
/// Algorithm 1 registers and the Algorithm 5 universal object identically.
///
/// # Example
///
/// The universal construction over a counter, driven purely through the
/// trait (mirroring the `AtomicUniversal` doctest it replaces):
///
/// ```
/// use hi_api::{ConcurrentObject, ObjectHandle, UniversalObject};
/// use hi_core::objects::{CounterOp, CounterResp, CounterSpec};
///
/// let mut counter = UniversalObject::new(CounterSpec::new(0, 100, 0), 2);
/// {
///     let mut handles = counter.handles();
///     let mut h1 = handles.pop().unwrap();
///     let mut h0 = handles.pop().unwrap();
///     h0.apply(CounterOp::Inc);
///     h1.apply(CounterOp::Inc);
///     assert_eq!(h0.apply(CounterOp::Read), CounterResp::Value(2));
/// }
/// assert_eq!(counter.abstract_state(), 2);
/// assert_eq!(
///     Some(counter.mem_snapshot()),
///     counter.canonical(&2),
///     "quiescent memory is the canonical representation of 2"
/// );
/// ```
pub trait ConcurrentObject<S: ObjectSpec> {
    /// The per-role handle type. Handles borrow the object, so all handles
    /// must be dropped before the object is observed or re-split.
    type Handle<'a>: ObjectHandle<S> + Send
    where
        Self: 'a;

    /// The object's sequential specification.
    fn spec(&self) -> &S;

    /// The role discipline of this implementation.
    fn roles(&self) -> Roles;

    /// The history-independence guarantee of this implementation.
    fn hi_level(&self) -> HiLevel;

    /// Hands out one handle per role ([`Roles::num_handles`] of them, in
    /// role order). The `&mut` receiver proves quiescence — no handle from
    /// an earlier split is outstanding — so re-splitting mid-lifetime is
    /// sound: adapters reconstruct any mutator-local state from the
    /// (canonical) quiescent memory.
    fn handles(&mut self) -> Vec<Self::Handle<'_>>;

    /// `mem(C)`: the object's memory representation, one `u64` per base
    /// object, in a fixed per-implementation order. Cell reads are atomic
    /// but the vector is not an atomic snapshot; it equals `mem(C)` only at
    /// configurations the object's [`HiLevel`] permits observing.
    fn mem_snapshot(&self) -> Vec<u64>;

    /// The canonical representation of abstract state `state` under
    /// [`mem_snapshot`](ConcurrentObject::mem_snapshot), fixed at
    /// initialization (Proposition 3). `None` if the implementation fixes no
    /// canonical form (i.e. [`HiLevel::NotHi`]).
    fn canonical(&self, state: &S::State) -> Option<Vec<u64>>;

    /// The object's current abstract state, decoded from memory. Only
    /// meaningful at quiescent points (the `&self` receiver cannot enforce
    /// this; callers of a live object must pause their handles first).
    fn abstract_state(&self) -> S::State;
}
