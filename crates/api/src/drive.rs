//! A generic threaded stress/HI-audit driver over [`ConcurrentObject`]:
//! random workload in, linearizability verdict + quiescent-point memory
//! audit out.
//!
//! This replaces the per-object glue that each threaded stress test used to
//! carry: one thread per handle applies randomly chosen supported
//! operations, every invocation/response is stamped from a global sequence
//! counter (widening intervals can only make *more* histories acceptable,
//! so any violation reported is real), the rebuilt [`History`] is checked
//! with the same linearizability search used for simulated executions, and
//! finally — at full quiescence — `mem_snapshot()` is compared against
//! `canonical(abstract_state())` whenever the object's
//! [`HiLevel`](crate::HiLevel) fixes a
//! canonical form.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hi_core::{menus_for, EnumerableSpec, History, ObjectSpec, Pid};
use hi_spec::{linearize, LinError, LinOptions, Linearization};

// The workload generation (script RNG, per-role seeds) lives in
// `hi_core::workload`, shared verbatim with the sim checker so both worlds
// face mirrored workloads; re-exported here for the facade's historical
// paths.
pub use hi_core::workload::{handle_seed, random_script};

use crate::object::{ConcurrentObject, ObjectHandle};

/// Configuration of a [`drive`] run.
#[derive(Clone, Copy, Debug)]
pub struct DriveConfig {
    /// Operations each handle applies.
    pub ops_per_handle: usize,
    /// Seed of the per-handle workload generators.
    pub seed: u64,
    /// Options of the final linearizability search.
    pub lin: LinOptions,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            ops_per_handle: 100,
            seed: 0x5eed,
            lin: LinOptions::default(),
        }
    }
}

/// Result of a successful [`drive`] run.
#[derive(Clone, Debug)]
pub struct DriveReport<S: ObjectSpec> {
    /// The rebuilt concurrent history.
    pub history: History<S::Op, S::Resp>,
    /// The linearization witness of that history.
    pub lin: Linearization<S::State>,
    /// The abstract state decoded from the quiescent memory.
    pub final_state: S::State,
    /// The quiescent `mem(C)`.
    pub mem: Vec<u64>,
    /// Whether the memory audit ran (`false` only for
    /// [`HiLevel::NotHi`](crate::HiLevel::NotHi)
    /// objects, which fix no canonical form).
    pub audited: bool,
}

/// Why a [`drive`] run failed.
#[derive(Clone, Debug)]
pub enum DriveError<S: ObjectSpec> {
    /// The rebuilt history does not linearize (or the search gave up).
    Lin(LinError),
    /// The quiescent memory is not the canonical representation of the
    /// final abstract state.
    NotCanonical {
        /// The decoded final state.
        state: S::State,
        /// The observed memory.
        mem: Vec<u64>,
        /// The expected canonical representation.
        canonical: Vec<u64>,
    },
}

impl<S: ObjectSpec> fmt::Display for DriveError<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Lin(e) => write!(f, "linearizability: {e}"),
            DriveError::NotCanonical {
                state,
                mem,
                canonical,
            } => write!(
                f,
                "quiescent memory of state {state:?} is {mem:?}, expected canonical {canonical:?}"
            ),
        }
    }
}

impl<S: ObjectSpec> Error for DriveError<S> {}

/// An invocation/response pair stamped from the global sequence counter.
struct StampedOp<O, R> {
    pid: usize,
    invoked: u64,
    returned: u64,
    op: O,
    resp: R,
}

/// Rebuilds a [`History`] from per-thread stamped records.
fn rebuild_history<O: Clone, R: Clone>(ops: Vec<StampedOp<O, R>>) -> History<O, R> {
    // (stamp, is_return, record index); stamps are unique (fetch_add).
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(ops.len() * 2);
    for (idx, op) in ops.iter().enumerate() {
        events.push((op.invoked, false, idx));
        events.push((op.returned, true, idx));
    }
    events.sort_unstable();
    let mut history = History::new();
    let mut pending: std::collections::HashMap<usize, hi_core::OpId> =
        std::collections::HashMap::new();
    for (_, is_return, idx) in events {
        let rec = &ops[idx];
        if is_return {
            let id = pending.remove(&idx).expect("return before invoke");
            history.ret(id, rec.resp.clone());
        } else {
            pending.insert(idx, history.invoke(Pid(rec.pid), rec.op.clone()));
        }
    }
    history
}

/// Drives `obj` with a random threaded workload and audits the result.
///
/// One OS thread per handle applies `cfg.ops_per_handle` operations drawn
/// uniformly from the operations its role supports. After the threads join:
///
/// 1. the stamped history is rebuilt and checked for linearizability
///    against `obj.spec()`;
/// 2. if the object's [`HiLevel`](crate::HiLevel) fixes a canonical form, the quiescent
///    `mem_snapshot()` is compared against `canonical(abstract_state())`.
///
/// # Errors
///
/// [`DriveError::Lin`] if the history does not linearize,
/// [`DriveError::NotCanonical`] if the memory audit fails.
pub fn drive<S, O>(obj: &mut O, cfg: &DriveConfig) -> Result<DriveReport<S>, DriveError<S>>
where
    S: EnumerableSpec,
    S::Op: Send,
    S::Resp: Send,
    O: ConcurrentObject<S>,
{
    let spec = obj.spec().clone();
    // The same role-aware menus the sim checker derives for the twin
    // scenario: both worlds are workload-mirrored by construction.
    let menus = menus_for(&spec, obj.roles());
    let audit = obj.hi_level().auditable();
    let log = {
        let handles = obj.handles();
        assert_eq!(
            handles.len(),
            menus.len(),
            "handles() disagrees with the declared role discipline"
        );
        let clock = AtomicU64::new(0);
        let log: Mutex<Vec<StampedOp<S::Op, S::Resp>>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for ((i, mut h), menu) in handles.into_iter().enumerate().zip(&menus) {
                assert!(
                    menu.iter().all(|op| h.supports(op)),
                    "handle {i} does not support its role menu"
                );
                if menu.is_empty() {
                    continue; // a role with nothing to do
                }
                let script = random_script(menu, cfg.ops_per_handle, handle_seed(cfg.seed, i));
                let clock = &clock;
                let log = &log;
                s.spawn(move || {
                    let mut local = Vec::with_capacity(script.len());
                    for op in script {
                        let invoked = clock.fetch_add(1, Ordering::SeqCst);
                        let resp = h.apply(op.clone());
                        let returned = clock.fetch_add(1, Ordering::SeqCst);
                        local.push(StampedOp {
                            pid: i,
                            invoked,
                            returned,
                            op,
                            resp,
                        });
                    }
                    log.lock().unwrap().extend(local);
                });
            }
        });
        log.into_inner().unwrap()
    };

    let history = rebuild_history(log);
    let lin = linearize(&spec, &history, &cfg.lin).map_err(DriveError::Lin)?;
    let final_state = obj.abstract_state();
    let mem = obj.mem_snapshot();
    if audit {
        let canonical = obj
            .canonical(&final_state)
            .expect("auditable HiLevel must fix a canonical form");
        if mem != canonical {
            return Err(DriveError::NotCanonical {
                state: final_state,
                mem,
                canonical,
            });
        }
    }
    Ok(DriveReport {
        history,
        lin,
        final_state,
        mem,
        audited: audit,
    })
}

/// Pure throughput run: one thread per handle applies `ops_per_handle`
/// random supported operations with no stamping, history or checking.
/// Returns the number of operations completed (the benchmarks' unit).
pub fn throughput<S, O>(obj: &mut O, ops_per_handle: usize, seed: u64) -> usize
where
    S: EnumerableSpec,
    S::Op: Send,
    O: ConcurrentObject<S>,
{
    let spec = obj.spec().clone();
    let menus = menus_for(&spec, obj.roles());
    let handles = obj.handles();
    assert_eq!(
        handles.len(),
        menus.len(),
        "handles() disagrees with the declared role discipline"
    );
    let mut total = 0;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for ((i, mut h), menu) in handles.into_iter().enumerate().zip(&menus) {
            if menu.is_empty() {
                continue;
            }
            let script = random_script(menu, ops_per_handle, handle_seed(seed, i));
            joins.push(s.spawn(move || {
                let n = script.len();
                for op in script {
                    h.apply(op);
                }
                n
            }));
        }
        total = joins
            .into_iter()
            .map(|j| j.join().expect("driver thread panicked"))
            .sum();
    });
    total
}
