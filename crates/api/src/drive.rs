//! A generic threaded stress/HI-audit driver over [`ConcurrentObject`]:
//! random workload in, linearizability verdict + quiescent-point memory
//! audit out.
//!
//! This replaces the per-object glue that each threaded stress test used to
//! carry: one thread per handle applies randomly chosen supported
//! operations, every invocation/response is stamped from a global sequence
//! counter (widening intervals can only make *more* histories acceptable,
//! so any violation reported is real), the rebuilt [`History`] is checked
//! with the same linearizability search used for simulated executions, and
//! finally — at full quiescence — `mem_snapshot()` is compared against
//! `canonical(abstract_state())` whenever the object's
//! [`HiLevel`](crate::HiLevel) fixes a
//! canonical form.

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use hi_core::{menus_for, EnumerableSpec, History, ObjectSpec, Pid};
use hi_spec::{linearize, LinError, LinOptions, Linearization};

// The workload generation (script RNG, per-role seeds) lives in
// `hi_core::workload`, shared verbatim with the sim checker so both worlds
// face mirrored workloads; re-exported here for the facade's historical
// paths.
pub use hi_core::workload::{handle_seed, random_script};

use crate::object::{ConcurrentObject, ObjectHandle};

/// Configuration of a [`drive`] run.
#[derive(Clone, Copy, Debug)]
pub struct DriveConfig {
    /// Operations each handle applies.
    pub ops_per_handle: usize,
    /// Seed of the per-handle workload generators.
    pub seed: u64,
    /// Options of the final linearizability search.
    pub lin: LinOptions,
    /// Wall-clock budget of a [`drive_watchdogged`] run; on expiry the run
    /// resolves to [`DriveError::Wedged`] instead of hanging. Ignored by the
    /// plain (borrowing) [`drive`], which cannot abandon its workers.
    pub deadline: Duration,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            ops_per_handle: 100,
            seed: 0x5eed,
            lin: LinOptions::default(),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Result of a successful [`drive`] run.
#[derive(Clone, Debug)]
pub struct DriveReport<S: ObjectSpec> {
    /// The rebuilt concurrent history.
    pub history: History<S::Op, S::Resp>,
    /// The linearization witness of that history.
    pub lin: Linearization<S::State>,
    /// The abstract state decoded from the quiescent memory.
    pub final_state: S::State,
    /// The quiescent `mem(C)`.
    pub mem: Vec<u64>,
    /// Whether the memory audit ran (`false` only for
    /// [`HiLevel::NotHi`](crate::HiLevel::NotHi)
    /// objects, which fix no canonical form).
    pub audited: bool,
}

/// How far one handle's worker got before the run ended — the per-handle
/// diagnostic a [`DriveError::Wedged`] carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HandleProgress {
    /// The handle index (role order, as returned by
    /// [`ConcurrentObject::handles`]).
    pub handle: usize,
    /// Operations the worker completed.
    pub applied: usize,
    /// Operations its script planned.
    pub planned: usize,
}

/// Live per-handle completion counters: one planned total and one atomic
/// applied counter per handle, shared between the workers that bump them
/// and whoever watches from outside (the [`drive_watchdogged`] watchdog,
/// the `hi_service` soak harness's wedge diagnostics). Reading is always
/// safe; the numbers are a monotone under-approximation of true progress.
#[derive(Debug)]
pub struct ProgressCounters {
    planned: Vec<usize>,
    applied: Vec<AtomicUsize>,
}

impl ProgressCounters {
    /// Counters for handles with the given planned operation totals, all
    /// starting at zero applied.
    pub fn new(planned: Vec<usize>) -> Self {
        let applied = planned.iter().map(|_| AtomicUsize::new(0)).collect();
        ProgressCounters { planned, applied }
    }

    /// The number of handles tracked.
    pub fn num_handles(&self) -> usize {
        self.planned.len()
    }

    /// Records one completed operation on `handle`.
    pub fn bump(&self, handle: usize) {
        self.applied[handle].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            handles: self
                .applied
                .iter()
                .enumerate()
                .map(|(i, done)| HandleProgress {
                    handle: i,
                    applied: done.load(Ordering::Relaxed),
                    planned: self.planned[i],
                })
                .collect(),
        }
    }
}

/// A point-in-time view of a driver's per-handle progress — the one struct
/// the watchdog, the service harness and future tools read instead of
/// re-counting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetricsSnapshot {
    /// One entry per handle, in role order.
    pub handles: Vec<HandleProgress>,
}

impl MetricsSnapshot {
    /// Total operations applied across all handles.
    pub fn applied(&self) -> usize {
        self.handles.iter().map(|h| h.applied).sum()
    }

    /// Total operations planned across all handles.
    pub fn planned(&self) -> usize {
        self.handles.iter().map(|h| h.planned).sum()
    }

    /// The handles that have not completed their planned operations.
    pub fn stalled(&self) -> Vec<HandleProgress> {
        self.handles
            .iter()
            .copied()
            .filter(|hp| hp.applied < hp.planned)
            .collect()
    }

    /// Whether every handle completed its plan.
    pub fn is_drained(&self) -> bool {
        self.stalled().is_empty()
    }
}

/// Why a [`drive`] run failed.
#[derive(Clone, Debug)]
pub enum DriveError<S: ObjectSpec> {
    /// The rebuilt history does not linearize (or the search gave up).
    Lin(LinError),
    /// The quiescent memory is not the canonical representation of the
    /// final abstract state.
    NotCanonical {
        /// The decoded final state.
        state: S::State,
        /// The observed memory.
        mem: Vec<u64>,
        /// The expected canonical representation.
        canonical: Vec<u64>,
    },
    /// The watchdog fired: the workers did not finish within the deadline.
    /// The wedged driver thread is abandoned (its memory is reclaimed at
    /// process exit), and this diagnostic is what CI reports instead of a
    /// hang.
    Wedged {
        /// The expired deadline.
        after: Duration,
        /// The handles that had not drained their scripts, with how far
        /// each got. Empty only if the run wedged before the object handed
        /// out handles.
        stalled: Vec<HandleProgress>,
        /// The object's memory at drive start (the canonical initial
        /// memory). The wedge-time memory of a live threaded object is not
        /// observable without aliasing it; the registry appends the sim
        /// twin's lane rendering for the mid-run view.
        mem: Vec<u64>,
    },
    /// A worker (or the driver itself) panicked.
    Panicked {
        /// The panicking handle index, when a worker; `None` when the
        /// driver thread itself panicked (e.g. during construction).
        handle: Option<usize>,
        /// The rendered panic payload.
        message: String,
    },
}

impl<S: ObjectSpec> fmt::Display for DriveError<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Lin(e) => write!(f, "linearizability: {e}"),
            DriveError::NotCanonical {
                state,
                mem,
                canonical,
            } => write!(
                f,
                "quiescent memory of state {state:?} is {mem:?}, expected canonical {canonical:?}"
            ),
            DriveError::Wedged {
                after,
                stalled,
                mem,
            } => {
                write!(f, "drive wedged: workers still running after {after:?};")?;
                if stalled.is_empty() {
                    write!(f, " no handle ever reported progress;")?;
                } else {
                    write!(f, " stalled handles:")?;
                    for hp in stalled {
                        write!(f, " {} ({}/{} ops)", hp.handle, hp.applied, hp.planned)?;
                    }
                    write!(f, ";")?;
                }
                write!(f, " memory at drive start: {mem:?}")
            }
            DriveError::Panicked { handle, message } => match handle {
                Some(i) => write!(f, "worker thread of handle {i} panicked: {message}"),
                None => write!(f, "driver thread panicked: {message}"),
            },
        }
    }
}

impl<S: ObjectSpec> Error for DriveError<S> {}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// An invocation/response pair stamped from the global sequence counter.
struct StampedOp<O, R> {
    pid: usize,
    invoked: u64,
    returned: u64,
    op: O,
    resp: R,
}

/// Rebuilds a [`History`] from per-thread stamped records.
fn rebuild_history<O: Clone, R: Clone>(ops: Vec<StampedOp<O, R>>) -> History<O, R> {
    // (stamp, is_return, record index); stamps are unique (fetch_add).
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(ops.len() * 2);
    for (idx, op) in ops.iter().enumerate() {
        events.push((op.invoked, false, idx));
        events.push((op.returned, true, idx));
    }
    events.sort_unstable();
    let mut history = History::new();
    let mut pending: std::collections::HashMap<usize, hi_core::OpId> =
        std::collections::HashMap::new();
    for (_, is_return, idx) in events {
        let rec = &ops[idx];
        if is_return {
            let id = pending.remove(&idx).expect("return before invoke");
            history.ret(id, rec.resp.clone());
        } else {
            pending.insert(idx, history.invoke(Pid(rec.pid), rec.op.clone()));
        }
    }
    history
}

/// Drives `obj` with a random threaded workload and audits the result.
///
/// One OS thread per handle applies `cfg.ops_per_handle` operations drawn
/// uniformly from the operations its role supports. After the threads join:
///
/// 1. the stamped history is rebuilt and checked for linearizability
///    against `obj.spec()`;
/// 2. if the object's [`HiLevel`](crate::HiLevel) fixes a canonical form, the quiescent
///    `mem_snapshot()` is compared against `canonical(abstract_state())`.
///
/// # Errors
///
/// [`DriveError::Lin`] if the history does not linearize,
/// [`DriveError::NotCanonical`] if the memory audit fails.
pub fn drive<S, O>(obj: &mut O, cfg: &DriveConfig) -> Result<DriveReport<S>, DriveError<S>>
where
    S: EnumerableSpec,
    S::Op: Send,
    S::Resp: Send,
    O: ConcurrentObject<S>,
{
    drive_core(obj, cfg, None)
}

/// The shared drive core: what [`drive`] runs directly and what the
/// [`drive_watchdogged`] driver thread runs behind the watchdog. When
/// `progress` is given (one counter per handle, role order), workers bump
/// their counter after every completed operation so the watchdog can report
/// *which* handles stalled.
fn drive_core<S, O>(
    obj: &mut O,
    cfg: &DriveConfig,
    progress: Option<&ProgressCounters>,
) -> Result<DriveReport<S>, DriveError<S>>
where
    S: EnumerableSpec,
    S::Op: Send,
    S::Resp: Send,
    O: ConcurrentObject<S>,
{
    let spec = obj.spec().clone();
    // The same role-aware menus the sim checker derives for the twin
    // scenario: both worlds are workload-mirrored by construction.
    let menus = menus_for(&spec, obj.roles());
    if let Some(p) = progress {
        assert_eq!(
            p.num_handles(),
            menus.len(),
            "one progress counter per handle"
        );
    }
    let audit = obj.hi_level().auditable();
    // Worker panics are caught, not propagated: a propagated panic would
    // abort the scope join and lose the handle index, and under the
    // watchdog it must surface as a structured DriveError, not a dead
    // channel.
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let log = {
        let handles = obj.handles();
        assert_eq!(
            handles.len(),
            menus.len(),
            "handles() disagrees with the declared role discipline"
        );
        let clock = AtomicU64::new(0);
        let log: Mutex<Vec<StampedOp<S::Op, S::Resp>>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for ((i, mut h), menu) in handles.into_iter().enumerate().zip(&menus) {
                assert!(
                    menu.iter().all(|op| h.supports(op)),
                    "handle {i} does not support its role menu"
                );
                if menu.is_empty() {
                    continue; // a role with nothing to do
                }
                let script = random_script(menu, cfg.ops_per_handle, handle_seed(cfg.seed, i));
                let clock = &clock;
                let log = &log;
                let panics = &panics;
                s.spawn(move || {
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let mut local = Vec::with_capacity(script.len());
                        for op in script {
                            let invoked = clock.fetch_add(1, Ordering::SeqCst);
                            let resp = h.apply(op.clone());
                            let returned = clock.fetch_add(1, Ordering::SeqCst);
                            local.push(StampedOp {
                                pid: i,
                                invoked,
                                returned,
                                op,
                                resp,
                            });
                            if let Some(p) = progress {
                                p.bump(i);
                            }
                        }
                        local
                    }));
                    match body {
                        Ok(local) => log.lock().unwrap().extend(local),
                        Err(payload) => panics.lock().unwrap().push((i, panic_message(payload))),
                    }
                });
            }
        });
        log.into_inner().unwrap()
    };

    if let Some((handle, message)) = panics.into_inner().unwrap().into_iter().next() {
        return Err(DriveError::Panicked {
            handle: Some(handle),
            message,
        });
    }

    let history = rebuild_history(log);
    let lin = linearize(&spec, &history, &cfg.lin).map_err(DriveError::Lin)?;
    let final_state = obj.abstract_state();
    let mem = obj.mem_snapshot();
    if audit {
        let canonical = obj
            .canonical(&final_state)
            .expect("auditable HiLevel must fix a canonical form");
        if mem != canonical {
            return Err(DriveError::NotCanonical {
                state: final_state,
                mem,
                canonical,
            });
        }
    }
    Ok(DriveReport {
        history,
        lin,
        final_state,
        mem,
        audited: audit,
    })
}

/// What the watchdogged driver thread reports before driving: enough for
/// the watchdog to diagnose a wedge from outside.
struct Preflight {
    /// The object's memory at drive start.
    mem0: Vec<u64>,
    /// Live per-handle completion counters, shared with the workers.
    progress: Arc<ProgressCounters>,
}

/// [`drive`], but un-hangable: the object is constructed and driven inside
/// a detached driver thread, and the caller waits at most `cfg.deadline`
/// for the verdict.
///
/// - On time: the ordinary [`DriveReport`] / [`DriveError`].
/// - A worker or the driver panics: [`DriveError::Panicked`] with the
///   handle index and rendered payload.
/// - The deadline expires (a wedged backend, e.g. a blocking algorithm
///   whose lock holder a test deliberately stalled): [`DriveError::Wedged`]
///   carrying each stalled handle's progress and the drive-start memory.
///   The wedged thread is *abandoned*, not killed — its handles may spin
///   until process exit — so CI gets a structured diagnostic instead of a
///   hang, at the cost of a leaked thread in the failing process.
///
/// Takes a constructor rather than a `&mut` borrow because the object must
/// move into (and possibly die with) the driver thread.
pub fn drive_watchdogged<S, O>(
    make: impl FnOnce() -> O + Send + 'static,
    cfg: &DriveConfig,
) -> Result<DriveReport<S>, DriveError<S>>
where
    S: EnumerableSpec + 'static,
    S::Op: Send,
    S::Resp: Send,
    S::State: Send,
    O: ConcurrentObject<S>,
{
    let (pre_tx, pre_rx) = mpsc::channel::<Preflight>();
    let (done_tx, done_rx) = mpsc::channel::<Result<DriveReport<S>, DriveError<S>>>();
    let cfg = *cfg;
    std::thread::Builder::new()
        .name("hi-drive-watchdogged".into())
        .spawn(move || {
            let verdict = catch_unwind(AssertUnwindSafe(|| {
                let mut obj = make();
                let menus = menus_for(&obj.spec().clone(), obj.roles());
                let planned: Vec<usize> = menus
                    .iter()
                    .map(|m| if m.is_empty() { 0 } else { cfg.ops_per_handle })
                    .collect();
                let progress = Arc::new(ProgressCounters::new(planned));
                let _ = pre_tx.send(Preflight {
                    mem0: obj.mem_snapshot(),
                    progress: Arc::clone(&progress),
                });
                drive_core(&mut obj, &cfg, Some(&progress))
            }));
            let _ = done_tx.send(verdict.unwrap_or_else(|payload| {
                Err(DriveError::Panicked {
                    handle: None,
                    message: panic_message(payload),
                })
            }));
        })
        .expect("spawn watchdogged driver thread");

    let start = Instant::now();
    let pre = pre_rx.recv_timeout(cfg.deadline).ok();
    let remaining = cfg.deadline.saturating_sub(start.elapsed());
    match done_rx.recv_timeout(remaining) {
        Ok(verdict) => verdict,
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(DriveError::Panicked {
            handle: None,
            message: "driver thread died without reporting".into(),
        }),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            let (stalled, mem) = match pre {
                Some(p) => (p.progress.snapshot().stalled(), p.mem0),
                None => (Vec::new(), Vec::new()),
            };
            Err(DriveError::Wedged {
                after: cfg.deadline,
                stalled,
                mem,
            })
        }
    }
}

/// Pure throughput run: one thread per handle applies `ops_per_handle`
/// random supported operations with no stamping, history or checking.
/// Returns the number of operations completed (the benchmarks' unit).
pub fn throughput<S, O>(obj: &mut O, ops_per_handle: usize, seed: u64) -> usize
where
    S: EnumerableSpec,
    S::Op: Send,
    O: ConcurrentObject<S>,
{
    let spec = obj.spec().clone();
    let menus = menus_for(&spec, obj.roles());
    let handles = obj.handles();
    assert_eq!(
        handles.len(),
        menus.len(),
        "handles() disagrees with the declared role discipline"
    );
    let mut total = 0;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for ((i, mut h), menu) in handles.into_iter().enumerate().zip(&menus) {
            if menu.is_empty() {
                continue;
            }
            let script = random_script(menu, ops_per_handle, handle_seed(seed, i));
            joins.push(s.spawn(move || {
                let n = script.len();
                for op in script {
                    h.apply(op);
                }
                n
            }));
        }
        total = joins
            .into_iter()
            .map(|j| j.join().expect("driver thread panicked"))
            .sum();
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the public metrics snapshot surface: field names, role order,
    /// totals, stalled filtering and the drained predicate. The service
    /// layer and future tools read this struct instead of re-counting;
    /// changing its shape is a reviewed API break, not drift.
    #[test]
    fn metrics_snapshot_pins_its_fields() {
        let counters = ProgressCounters::new(vec![10, 0, 5]);
        assert_eq!(counters.num_handles(), 3);
        counters.bump(0);
        counters.bump(0);
        counters.bump(2);
        let snap = counters.snapshot();
        assert_eq!(
            snap.handles,
            vec![
                HandleProgress {
                    handle: 0,
                    applied: 2,
                    planned: 10,
                },
                HandleProgress {
                    handle: 1,
                    applied: 0,
                    planned: 0,
                },
                HandleProgress {
                    handle: 2,
                    applied: 1,
                    planned: 5,
                },
            ]
        );
        assert_eq!(snap.applied(), 3);
        assert_eq!(snap.planned(), 15);
        assert_eq!(
            snap.stalled().iter().map(|h| h.handle).collect::<Vec<_>>(),
            vec![0, 2],
            "handle 1 planned nothing, so it is never stalled"
        );
        assert!(!snap.is_drained());
        for _ in 0..8 {
            counters.bump(0);
        }
        for _ in 0..4 {
            counters.bump(2);
        }
        assert!(counters.snapshot().is_drained());
    }
}
