//! Unit tests for the executor and runner, using a minimal two-step
//! test-double implementation.

use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
use hi_core::Pid;

use crate::exec::{Executor, RunError};
use crate::mem::{CellDomain, CellId, SharedMem};
use crate::process::{Implementation, MemCtx, ProcessHandle};
use crate::runner::{run_workload, Workload};
use crate::sched::{RoundRobin, Scripted, Seeded};

/// A register where writes take two primitives (stage cell, then value
/// cell) — enough structure to exercise quiescence tracking and forking.
#[derive(Clone, Debug)]
pub(crate) struct TwoStepRegister {
    spec: MultiRegisterSpec,
    stage: CellId,
    value: CellId,
    mem: SharedMem,
}

impl TwoStepRegister {
    pub(crate) fn new(k: u64, v0: u64) -> Self {
        let spec = MultiRegisterSpec::new(k, v0);
        let mut mem = SharedMem::new();
        let stage = mem.alloc("stage", CellDomain::Bounded(k + 1), 0);
        let value = mem.alloc("value", CellDomain::Bounded(k + 1), v0);
        TwoStepRegister {
            spec,
            stage,
            value,
            mem,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Pc {
    Idle,
    Stage(u64),
    Commit(u64),
    Read,
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct TwoStepProcess {
    stage: CellId,
    value: CellId,
    pc: Pc,
}

impl ProcessHandle<MultiRegisterSpec> for TwoStepProcess {
    fn invoke(&mut self, op: RegisterOp) {
        assert_eq!(self.pc, Pc::Idle);
        self.pc = match op {
            RegisterOp::Write(v) => Pc::Stage(v),
            RegisterOp::Read => Pc::Read,
        };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
        match self.pc.clone() {
            Pc::Idle => panic!("step of idle process"),
            Pc::Stage(v) => {
                ctx.write(self.stage, v);
                self.pc = Pc::Commit(v);
                None
            }
            Pc::Commit(v) => {
                ctx.write(self.value, v);
                self.pc = Pc::Idle;
                Some(RegisterResp::Ack)
            }
            Pc::Read => {
                let v = ctx.read(self.value);
                self.pc = Pc::Idle;
                Some(RegisterResp::Value(v))
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match self.pc {
            Pc::Idle => None,
            Pc::Stage(_) | Pc::Commit(_) => Some(self.stage),
            Pc::Read => Some(self.value),
        }
    }
}

impl Implementation<MultiRegisterSpec> for TwoStepRegister {
    type Process = TwoStepProcess;

    fn spec(&self) -> &MultiRegisterSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, _pid: Pid) -> TwoStepProcess {
        TwoStepProcess {
            stage: self.stage,
            value: self.value,
            pc: Pc::Idle,
        }
    }
}

#[test]
fn quiescence_tracking() {
    let mut exec = Executor::new(TwoStepRegister::new(4, 1));
    assert!(exec.is_quiescent() && exec.is_state_quiescent());
    exec.invoke(Pid(1), RegisterOp::Read);
    assert!(!exec.is_quiescent());
    assert!(
        exec.is_state_quiescent(),
        "pending read-only op keeps state-quiescence"
    );
    exec.invoke(Pid(0), RegisterOp::Write(2));
    assert!(!exec.is_state_quiescent());
    exec.step(Pid(0));
    exec.step(Pid(0));
    assert!(exec.is_state_quiescent());
    exec.step(Pid(1));
    assert!(exec.is_quiescent());
}

#[test]
fn fork_diverges_independently() {
    let mut a = Executor::new(TwoStepRegister::new(4, 1));
    a.invoke(Pid(0), RegisterOp::Write(3));
    a.step(Pid(0));
    let mut b = a.clone();
    a.step(Pid(0)); // a commits
    assert_ne!(a.snapshot(), b.snapshot(), "fork must not share memory");
    b.step(Pid(0)); // b commits too
    assert_eq!(a.snapshot(), b.snapshot());
    assert!(a.processes_eq(&b));
}

#[test]
fn history_records_invocations_and_returns() {
    let mut exec = Executor::new(TwoStepRegister::new(4, 1));
    let id = exec.invoke(Pid(0), RegisterOp::Write(2));
    assert_eq!(exec.history().pending_ids(), vec![id]);
    exec.step(Pid(0));
    let done = exec.step(Pid(0)).expect("write completes in two steps");
    assert_eq!(done.0, id);
    assert!(exec.history().is_quiescent());
}

#[test]
fn run_solo_budget() {
    let mut exec = Executor::new(TwoStepRegister::new(4, 1));
    exec.invoke(Pid(0), RegisterOp::Write(2));
    assert_eq!(
        exec.run_solo(Pid(0), 1),
        Err(RunError::StepLimit {
            pid: Pid(0),
            steps: 1
        })
    );
    // The step taken above counted; one more finishes.
    assert!(exec.run_solo(Pid(0), 1).is_ok());
}

#[test]
fn run_workload_round_robin_completes() {
    let imp = TwoStepRegister::new(4, 1);
    let mut exec = Executor::new(imp);
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(0, RegisterOp::Write(2));
    w.push(1, RegisterOp::Read);
    w.push(1, RegisterOp::Read);
    run_workload(&mut exec, w, &mut RoundRobin::new(), &mut (), 1_000).unwrap();
    assert!(exec.is_quiescent());
    assert_eq!(exec.history().records().len(), 4);
}

#[test]
fn run_workload_step_budget() {
    let imp = TwoStepRegister::new(4, 1);
    let mut exec = Executor::new(imp);
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    let res = run_workload(&mut exec, w, &mut RoundRobin::new(), &mut (), 2);
    assert!(matches!(res, Err(RunError::StepLimit { .. })));
}

#[test]
fn observer_sees_every_transition() {
    let imp = TwoStepRegister::new(4, 1);
    let mut exec = Executor::new(imp.clone());
    let mut transitions = 0u64;
    let mut observer = |_e: &Executor<MultiRegisterSpec, TwoStepRegister>| transitions += 1;
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(1, RegisterOp::Read);
    run_workload(&mut exec, w, &mut Seeded::new(9), &mut observer, 1_000).unwrap();
    // 2 invocations + 2 write steps + 1 read step.
    assert_eq!(transitions, 5);
}

#[test]
fn scripted_schedule_reproduces_interleaving() {
    let imp = TwoStepRegister::new(4, 1);
    // Stage the write, then let the read run before the commit: the read
    // must see the old value.
    let mut exec = Executor::new(imp.clone());
    let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
    w.push(0, RegisterOp::Write(3));
    w.push(1, RegisterOp::Read);
    // p0 invoke + stage, p1 invoke + read, p0 commit.
    let mut sched = Scripted::runs(&[(0, 2), (1, 2), (0, 1)]);
    run_workload(&mut exec, w, &mut sched, &mut (), 100).unwrap();
    let recs = exec.history().records();
    let read = recs.iter().find(|r| r.op == RegisterOp::Read).unwrap();
    assert_eq!(
        read.resp,
        Some(RegisterResp::Value(1)),
        "read ran before the commit"
    );
}

#[test]
fn trace_captures_primitives_in_order() {
    let imp = TwoStepRegister::new(4, 1);
    let mut exec = Executor::new(imp);
    exec.enable_trace();
    exec.run_op_solo(Pid(0), RegisterOp::Write(2), 10).unwrap();
    let trace = exec.take_trace().unwrap();
    assert_eq!(trace.len(), 2);
    let rendered = trace.render(exec.mem());
    assert!(rendered.contains("stage"), "{rendered}");
    assert!(rendered.contains("value"), "{rendered}");
}
