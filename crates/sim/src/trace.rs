//! Step-level execution traces, used to render the paper's figures.

use std::fmt;

use hi_core::Pid;

use crate::mem::{CellId, SharedMem};

/// The primitive performed at one step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrimKind {
    /// A read; the event's `value` is the value read.
    Read,
    /// A write; the event's `value` is the value written.
    Write,
    /// A compare-and-swap; the event's `value` is the cell's value *after*
    /// the operation.
    Cas {
        /// The expected value.
        expected: u64,
        /// The replacement value.
        new: u64,
        /// Whether the CAS succeeded.
        ok: bool,
    },
}

/// One primitive operation on a base object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Global step index in the execution.
    pub step: u64,
    /// The process that took the step.
    pub pid: Pid,
    /// The base object accessed.
    pub cell: CellId,
    /// What was done.
    pub kind: PrimKind,
    /// Value read, written, or resulting (for CAS).
    pub value: u64,
}

impl TraceEvent {
    /// Renders the event against a memory layout (for cell names).
    pub fn render(&self, mem: &SharedMem) -> String {
        let name = mem.name(self.cell);
        match self.kind {
            PrimKind::Read => format!(
                "[{:>4}] {} read  {} -> {}",
                self.step, self.pid, name, self.value
            ),
            PrimKind::Write => format!(
                "[{:>4}] {} write {} <- {}",
                self.step, self.pid, name, self.value
            ),
            PrimKind::Cas { expected, new, ok } => format!(
                "[{:>4}] {} cas   {} ({} -> {}) {}",
                self.step,
                self.pid,
                name,
                expected,
                new,
                if ok { "ok" } else { "failed" }
            ),
        }
    }
}

/// A sequence of primitive operations, in execution order.
///
/// # Example
///
/// ```
/// use hi_sim::{Trace, PrimKind, CellId, Pid};
///
/// let mut t = Trace::new();
/// t.record(0, Pid(1), CellId(0), PrimKind::Write, 1);
/// assert_eq!(t.events().len(), 1);
/// assert_eq!(t.writes_to(CellId(0)).count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, step: u64, pid: Pid, cell: CellId, kind: PrimKind, value: u64) {
        self.events.push(TraceEvent {
            step,
            pid,
            cell,
            kind,
            value,
        });
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over the writes (including successful CAS) to `cell`.
    pub fn writes_to(&self, cell: CellId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| {
            e.cell == cell && matches!(e.kind, PrimKind::Write | PrimKind::Cas { ok: true, .. })
        })
    }

    /// Renders the whole trace against a memory layout.
    pub fn render(&self, mem: &SharedMem) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render(mem));
            out.push('\n');
        }
        out
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ev in &self.events {
            writeln!(
                f,
                "[{:>4}] {} {:?} {} = {}",
                ev.step, ev.pid, ev.kind, ev.cell, ev.value
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::CellDomain;

    #[test]
    fn render_uses_cell_names() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("A[2]", CellDomain::Binary, 0);
        let mut t = Trace::new();
        t.record(3, Pid(0), c, PrimKind::Write, 1);
        let s = t.render(&mem);
        assert!(s.contains("A[2]"), "{s}");
        assert!(s.contains("p0"), "{s}");
    }

    #[test]
    fn writes_to_filters_reads_and_failed_cas() {
        let mut t = Trace::new();
        let c = CellId(0);
        t.record(0, Pid(0), c, PrimKind::Read, 0);
        t.record(1, Pid(0), c, PrimKind::Write, 1);
        t.record(
            2,
            Pid(0),
            c,
            PrimKind::Cas {
                expected: 0,
                new: 1,
                ok: false,
            },
            1,
        );
        t.record(
            3,
            Pid(0),
            c,
            PrimKind::Cas {
                expected: 1,
                new: 0,
                ok: true,
            },
            0,
        );
        assert_eq!(t.writes_to(c).count(), 2);
    }
}
