//! Step machines: algorithm code in resumable, one-primitive-per-step form.

use hi_core::{ObjectSpec, Pid};

use crate::mem::{CellId, SharedMem};
use crate::trace::{PrimKind, Trace};

/// How a step touched its base object, as far as the memory is concerned.
///
/// This is the independence relation's raw material: two steps of different
/// processes commute when their footprints are compatible (see
/// `hi_spec::explore`). A failed CAS leaves the cell unchanged, so it
/// counts as a [`AccessKind::Read`]; a successful CAS counts as a
/// [`AccessKind::Write`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// The step observed the cell without changing it (read, failed CAS).
    Read,
    /// The step changed — or may have changed — the cell (write,
    /// successful CAS).
    Write,
}

/// The single memory access of one step: which base object, and whether it
/// was mutated. The `MemCtx` one-primitive-per-step discipline guarantees
/// every step has at most one footprint; steps that perform only local
/// computation have none.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Footprint {
    /// The base object accessed.
    pub cell: CellId,
    /// Whether the access mutated the cell.
    pub kind: AccessKind,
}

/// A step context handed to [`ProcessHandle::step`]. It wraps the shared
/// memory and enforces the model's "one primitive per step" rule: at most
/// one of [`read`](MemCtx::read), [`write`](MemCtx::write) or
/// [`cas`](MemCtx::cas) may be called per step.
///
/// All primitives are recorded in the executor's [`Trace`] when tracing is
/// enabled, and the step's [`Footprint`] is exposed to the executor for
/// the model checker's independence relation.
#[derive(Debug)]
pub struct MemCtx<'a> {
    mem: &'a mut SharedMem,
    trace: Option<&'a mut Trace>,
    pid: Pid,
    step: u64,
    used: bool,
    footprint: Option<Footprint>,
}

impl<'a> MemCtx<'a> {
    /// Creates a context for one step of `pid` at global step index `step`.
    pub(crate) fn new(
        mem: &'a mut SharedMem,
        trace: Option<&'a mut Trace>,
        pid: Pid,
        step: u64,
    ) -> Self {
        MemCtx {
            mem,
            trace,
            pid,
            step,
            used: false,
            footprint: None,
        }
    }

    /// Whether this step already performed its primitive.
    pub fn primitive_used(&self) -> bool {
        self.used
    }

    /// The memory access this step performed, if any.
    pub fn footprint(&self) -> Option<Footprint> {
        self.footprint
    }

    /// The stepping process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    fn use_primitive(&mut self) {
        assert!(!self.used, "a step may perform at most one primitive");
        self.used = true;
    }

    fn record(&mut self, cell: CellId, kind: PrimKind, value: u64) {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.record(self.step, self.pid, cell, kind, value);
        }
    }

    /// Primitive read of a base object.
    pub fn read(&mut self, cell: CellId) -> u64 {
        self.use_primitive();
        let v = self.mem.read(cell);
        self.footprint = Some(Footprint {
            cell,
            kind: AccessKind::Read,
        });
        self.record(cell, PrimKind::Read, v);
        v
    }

    /// Primitive write of a base object.
    pub fn write(&mut self, cell: CellId, value: u64) {
        self.use_primitive();
        self.mem.write(cell, value);
        self.footprint = Some(Footprint {
            cell,
            kind: AccessKind::Write,
        });
        self.record(cell, PrimKind::Write, value);
    }

    /// Primitive compare-and-swap on a base object.
    pub fn cas(&mut self, cell: CellId, expected: u64, new: u64) -> bool {
        self.use_primitive();
        let ok = self.mem.cas(cell, expected, new);
        self.footprint = Some(Footprint {
            cell,
            // A failed CAS is observationally a read: the cell is unchanged.
            kind: if ok {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        });
        self.record(
            cell,
            PrimKind::Cas { expected, new, ok },
            self.mem.read(cell),
        );
        ok
    }
}

/// The per-process half of an implementation: a resumable step machine with
/// persistent local state.
///
/// A process alternates between *idle* (no pending operation) and *busy*
/// (executing one operation one primitive at a time). Local state — the
/// paper's "local private variables held by each process", e.g. Algorithm
/// 4's `last-val` or Algorithm 5's `priority_i` — lives in the handle and
/// survives across operations, but is *not* part of `mem(C)`.
///
/// Handles are `Clone + PartialEq` so executions can be forked and compared,
/// which the exhaustive explorer and the §5 lower-bound adversary (which
/// checks *indistinguishability* of reader states across executions) rely
/// on.
pub trait ProcessHandle<S: ObjectSpec>: Clone + PartialEq + std::fmt::Debug {
    /// Begins an operation.
    ///
    /// # Panics
    ///
    /// Panics if the process is busy.
    fn invoke(&mut self, op: S::Op);

    /// Whether the process has no pending operation.
    fn is_idle(&self) -> bool;

    /// Executes one step (at most one primitive). Returns `Some(resp)` when
    /// the pending operation completes, `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the process is idle.
    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<S::Resp>;

    /// The cell the *next* step will access, if the machine knows it.
    ///
    /// The Lemma 16 adversary uses this to pick the two states whose
    /// canonical representations agree on the cell the reader is about to
    /// read. Machines that cannot predict their next access return `None`
    /// (the adversary then refuses to run).
    fn peeked_cell(&self) -> Option<CellId> {
        None
    }
}

/// A complete implementation of an abstract object from base objects: the
/// memory layout plus a step machine per process.
///
/// The memory layout is fixed at construction ([`init_memory`]
/// returns the same layout every time), which is precisely the
/// "canonical representation determined at initialization" requirement of
/// Proposition 3.
///
/// [`init_memory`]: Implementation::init_memory
pub trait Implementation<S: ObjectSpec>: Clone + std::fmt::Debug {
    /// The per-process step machine.
    type Process: ProcessHandle<S>;

    /// The abstract object being implemented.
    fn spec(&self) -> &S;

    /// Number of processes this implementation serves.
    fn num_processes(&self) -> usize;

    /// The initial shared memory (layout + initial values). Must be
    /// identical on every call.
    fn init_memory(&self) -> SharedMem;

    /// Creates the step machine for process `pid`.
    ///
    /// Role conventions (e.g. "pid 0 is the writer" for SWSR registers) are
    /// documented per implementation; machines panic when invoked with an
    /// operation their role does not allow.
    fn make_process(&self, pid: Pid) -> Self::Process;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::CellDomain;

    #[test]
    fn ctx_allows_one_primitive() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("x", CellDomain::Word, 0);
        let mut ctx = MemCtx::new(&mut mem, None, Pid(0), 0);
        ctx.write(c, 3);
        assert!(ctx.primitive_used());
    }

    #[test]
    fn ctx_exposes_footprints() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("x", CellDomain::Word, 0);
        {
            let mut ctx = MemCtx::new(&mut mem, None, Pid(0), 0);
            assert_eq!(ctx.footprint(), None, "no primitive yet");
            ctx.write(c, 3);
            assert_eq!(
                ctx.footprint(),
                Some(Footprint {
                    cell: c,
                    kind: AccessKind::Write
                })
            );
        }
        {
            let mut ctx = MemCtx::new(&mut mem, None, Pid(0), 1);
            ctx.read(c);
            assert_eq!(ctx.footprint().unwrap().kind, AccessKind::Read);
        }
        {
            // Failed CAS leaves the cell unchanged: a read footprint.
            let mut ctx = MemCtx::new(&mut mem, None, Pid(0), 2);
            assert!(!ctx.cas(c, 99, 1));
            assert_eq!(ctx.footprint().unwrap().kind, AccessKind::Read);
        }
        {
            let mut ctx = MemCtx::new(&mut mem, None, Pid(0), 3);
            assert!(ctx.cas(c, 3, 1));
            assert_eq!(ctx.footprint().unwrap().kind, AccessKind::Write);
        }
    }

    #[test]
    #[should_panic(expected = "at most one primitive")]
    fn ctx_rejects_two_primitives() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("x", CellDomain::Word, 0);
        let mut ctx = MemCtx::new(&mut mem, None, Pid(0), 0);
        ctx.write(c, 3);
        ctx.read(c);
    }

    #[test]
    fn ctx_records_trace() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("x", CellDomain::Word, 0);
        let mut trace = Trace::new();
        {
            let mut ctx = MemCtx::new(&mut mem, Some(&mut trace), Pid(1), 5);
            assert!(!ctx.cas(c, 9, 1));
        }
        assert_eq!(trace.events().len(), 1);
        let ev = &trace.events()[0];
        assert_eq!(ev.pid, Pid(1));
        assert_eq!(ev.step, 5);
        assert!(matches!(ev.kind, PrimKind::Cas { ok: false, .. }));
    }
}
