#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A deterministic simulator of the asynchronous shared-memory model.
//!
//! The paper's model (§2): `n` processes communicate through shared base
//! objects; each step consists of local computation plus a single primitive
//! operation on one base object; a configuration `C` records every process's
//! state and every base object's state, and `mem(C)` is the vector of base
//! object states. This crate implements that model literally:
//!
//! * [`SharedMem`] — the base objects. Every cell holds a `u64` and carries a
//!   [`CellDomain`] declaring its state space (binary registers, bounded
//!   cells, full words). `mem(C)` is [`SharedMem::snapshot`].
//! * [`ProcessHandle`] / [`Implementation`] — algorithm code as resumable
//!   *step machines*: each call to [`ProcessHandle::step`] performs at most
//!   one primitive (enforced by [`MemCtx`]).
//! * [`Executor`] — drives processes step by step, records the induced
//!   [`History`], tracks quiescence and state-quiescence,
//!   and can snapshot `mem(C)` at any configuration. Executors are `Clone`,
//!   which is what makes exhaustive schedule exploration and the §5
//!   lower-bound adversary (which forks executions) possible.
//! * [`Scheduler`]s — round-robin, seeded random, and scripted schedules
//!   (the scripted one reproduces the paper's figures exactly).
//! * [`Trace`] — a step-level record of primitives for rendering executions.
//!
//! # Example: a trivial register implementation
//!
//! ```
//! use hi_core::objects::{MultiRegisterSpec, RegisterOp, RegisterResp};
//! use hi_sim::{
//!     CellDomain, CellId, Executor, Implementation, MemCtx, Pid, ProcessHandle, SharedMem,
//! };
//!
//! // One big cell holding the whole value: trivially history independent.
//! #[derive(Clone, Debug)]
//! struct BigCellRegister {
//!     spec: MultiRegisterSpec,
//!     cell: CellId,
//!     mem: SharedMem,
//! }
//!
//! #[derive(Clone, Debug, PartialEq, Eq)]
//! struct Proc {
//!     cell: CellId,
//!     pending: Option<RegisterOp>,
//! }
//!
//! impl ProcessHandle<MultiRegisterSpec> for Proc {
//!     fn invoke(&mut self, op: RegisterOp) {
//!         assert!(self.pending.is_none());
//!         self.pending = Some(op);
//!     }
//!     fn is_idle(&self) -> bool {
//!         self.pending.is_none()
//!     }
//!     fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<RegisterResp> {
//!         match self.pending.take().expect("no pending op") {
//!             RegisterOp::Read => Some(RegisterResp::Value(ctx.read(self.cell))),
//!             RegisterOp::Write(v) => {
//!                 ctx.write(self.cell, v);
//!                 Some(RegisterResp::Ack)
//!             }
//!         }
//!     }
//!     fn peeked_cell(&self) -> Option<CellId> {
//!         self.pending.as_ref().map(|_| self.cell)
//!     }
//! }
//!
//! impl Implementation<MultiRegisterSpec> for BigCellRegister {
//!     type Process = Proc;
//!     fn spec(&self) -> &MultiRegisterSpec { &self.spec }
//!     fn num_processes(&self) -> usize { 2 }
//!     fn init_memory(&self) -> SharedMem { self.mem.clone() }
//!     fn make_process(&self, _pid: Pid) -> Proc {
//!         Proc { cell: self.cell, pending: None }
//!     }
//! }
//!
//! let spec = MultiRegisterSpec::new(8, 3);
//! let mut mem = SharedMem::new();
//! let cell = mem.alloc("R", CellDomain::Bounded(9), 3);
//! let imp = BigCellRegister { spec, cell, mem };
//! let mut exec = Executor::new(imp);
//! exec.run_op_solo(Pid(0), RegisterOp::Write(7), 10).unwrap();
//! assert_eq!(
//!     exec.run_op_solo(Pid(1), RegisterOp::Read, 10).unwrap(),
//!     RegisterResp::Value(7)
//! );
//! ```

pub mod exec;
#[cfg(test)]
mod exec_tests;
pub mod lanes;
pub mod mem;
pub mod process;
pub mod runner;
pub mod sched;
pub mod trace;

pub use exec::{Executor, RunError};
pub use hi_core::{History, OpId, Pid};
pub use lanes::render_lanes;
pub use mem::{CellDomain, CellId, CellInfo, MemSnapshot, SharedMem};
pub use process::{AccessKind, Footprint, Implementation, MemCtx, ProcessHandle};
pub use runner::{run_workload, run_workload_with_faults, StepObserver, Workload};
pub use sched::{Fault, FaultPlan, Faulty, RoundRobin, Scheduler, Scripted, Seeded};
pub use trace::{PrimKind, Trace, TraceEvent};
