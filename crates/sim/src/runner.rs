//! Workloads and the scheduling loop.

use std::collections::VecDeque;

use hi_core::{ObjectSpec, Pid};

use crate::exec::{Executor, RunError};
use crate::process::Implementation;
use crate::sched::{Faulty, Scheduler};

/// A per-process queue of operations to run.
///
/// # Example
///
/// ```
/// use hi_core::objects::{MultiRegisterSpec, RegisterOp};
/// use hi_sim::Workload;
///
/// let mut w: Workload<MultiRegisterSpec> = Workload::new(2);
/// w.push(0, RegisterOp::Write(3));
/// w.push(1, RegisterOp::Read);
/// assert!(!w.is_done());
/// ```
#[derive(Clone, Debug)]
pub struct Workload<S: ObjectSpec> {
    queues: Vec<VecDeque<S::Op>>,
}

impl<S: ObjectSpec> Workload<S> {
    /// Creates an empty workload for `n` processes.
    pub fn new(n: usize) -> Self {
        Workload {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Creates a workload from per-process operation lists.
    pub fn from_vecs(queues: Vec<Vec<S::Op>>) -> Self {
        Workload {
            queues: queues.into_iter().map(VecDeque::from).collect(),
        }
    }

    /// Appends `op` to process `pid`'s queue.
    pub fn push(&mut self, pid: usize, op: S::Op) {
        self.queues[pid].push_back(op);
    }

    /// Whether all queues are empty.
    pub fn is_done(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.queues.len()
    }

    /// Total operations remaining.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Removes and returns the next operation of `pid`, if any. Exposed for
    /// external driving loops such as the exhaustive explorer.
    pub fn pop(&mut self, pid: Pid) -> Option<S::Op> {
        self.queues[pid.0].pop_front()
    }

    /// Whether `pid` has operations left to invoke.
    pub fn has_next(&self, pid: Pid) -> bool {
        !self.queues[pid.0].is_empty()
    }

    /// The operations `pid` has yet to invoke, in invocation order — the
    /// workload *cursor*, which the model checker folds into configuration
    /// fingerprints.
    pub fn remaining_of(&self, pid: Pid) -> impl Iterator<Item = &S::Op> {
        self.queues[pid.0].iter()
    }
}

/// Observes the execution after every transition (invocation or step).
///
/// The history-independence checkers are observers: they snapshot `mem(C)`
/// at the configurations their observation model allows.
pub trait StepObserver<S: ObjectSpec, I: Implementation<S>> {
    /// Called after each invocation and after each step.
    fn observe(&mut self, exec: &Executor<S, I>);
}

impl<S, I, F> StepObserver<S, I> for F
where
    S: ObjectSpec,
    I: Implementation<S>,
    F: FnMut(&Executor<S, I>),
{
    fn observe(&mut self, exec: &Executor<S, I>) {
        self(exec)
    }
}

/// An observer that does nothing.
impl<S: ObjectSpec, I: Implementation<S>> StepObserver<S, I> for () {
    fn observe(&mut self, _exec: &Executor<S, I>) {}
}

/// Drives `exec` until the workload is exhausted and all operations have
/// returned, scheduling with `sched` and reporting every transition to
/// `observer`.
///
/// A process is *enabled* if it has a pending operation (it can step) or an
/// operation waiting in its queue (it can invoke). Each scheduler turn
/// performs one transition: an invocation if the chosen process is idle,
/// otherwise one step.
///
/// # Errors
///
/// Returns [`RunError::StepLimit`] if more than `max_steps` transitions
/// occur — the guard that turns a starved lock-free loop (e.g. Algorithm 2's
/// reader under a hostile schedule) into a reportable outcome instead of a
/// hang.
pub fn run_workload<S, I, Sch, Obs>(
    exec: &mut Executor<S, I>,
    mut workload: Workload<S>,
    sched: &mut Sch,
    observer: &mut Obs,
    max_steps: u64,
) -> Result<(), RunError>
where
    S: ObjectSpec,
    I: Implementation<S>,
    Sch: Scheduler,
    Obs: StepObserver<S, I>,
{
    assert_eq!(
        workload.num_processes(),
        exec.num_processes(),
        "workload/process count mismatch"
    );
    let mut transitions = 0u64;
    loop {
        let enabled: Vec<Pid> = (0..exec.num_processes())
            .map(Pid)
            .filter(|&p| exec.can_step(p) || workload.has_next(p))
            .collect();
        if enabled.is_empty() {
            return Ok(());
        }
        if transitions >= max_steps {
            return Err(RunError::StepLimit {
                pid: enabled[0],
                steps: max_steps,
            });
        }
        transitions += 1;
        let pid = sched.next_pid(&enabled);
        if exec.can_step(pid) {
            exec.step(pid);
        } else {
            let op = workload
                .pop(pid)
                .expect("scheduler chose a process with no work");
            exec.invoke(pid, op);
        }
        observer.observe(exec);
    }
}

/// Drives `exec` like [`run_workload`], injecting the faults of `faulty`'s
/// [`FaultPlan`](crate::FaultPlan).
///
/// The differences from the fault-free loop:
///
/// - a crashed process is *not* enabled: its queued operations are
///   abandoned and a pending operation stays pending forever (its memory
///   contribution is frozen — the paper's crash model);
/// - the run terminates successfully once every **non-crashed** process is
///   idle with an empty queue, even if crashed processes still hold pending
///   operations;
/// - the observer also sees the fault state, so HI checkers can tell which
///   observation points lie in the post-crash world.
///
/// Until the first fault activates, the schedule is identical to
/// `run_workload` under the same base scheduler, so a crash point sampled
/// from a fault-free baseline run lands exactly where intended.
///
/// # Errors
///
/// Returns [`RunError::StepLimit`] after `max_steps` transitions — for
/// blocking implementations a crash inside a critical section legitimately
/// wedges the survivors, and the caller decides whether that is tolerable
/// for the declared progress class.
pub fn run_workload_with_faults<S, I, Sch, F>(
    exec: &mut Executor<S, I>,
    mut workload: Workload<S>,
    faulty: &mut Faulty<Sch>,
    mut observer: F,
    max_steps: u64,
) -> Result<(), RunError>
where
    S: ObjectSpec,
    I: Implementation<S>,
    Sch: Scheduler,
    F: FnMut(&Executor<S, I>, &Faulty<Sch>),
{
    assert_eq!(
        workload.num_processes(),
        exec.num_processes(),
        "workload/process count mismatch"
    );
    let mut transitions = 0u64;
    loop {
        let enabled: Vec<Pid> = (0..exec.num_processes())
            .map(Pid)
            .filter(|&p| !faulty.crashed(p) && (exec.can_step(p) || workload.has_next(p)))
            .collect();
        if enabled.is_empty() {
            return Ok(());
        }
        if transitions >= max_steps {
            return Err(RunError::StepLimit {
                pid: enabled[0],
                steps: max_steps,
            });
        }
        transitions += 1;
        let pid = faulty.next_pid(&enabled);
        if exec.can_step(pid) {
            exec.step(pid);
        } else {
            let op = workload
                .pop(pid)
                .expect("scheduler chose a process with no work");
            exec.invoke(pid, op);
        }
        observer(exec, faulty);
    }
}
