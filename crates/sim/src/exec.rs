//! The executor: drives step machines and records configurations.

use std::error::Error;
use std::fmt;

use hi_core::{History, ObjectSpec, OpId, Pid};

use crate::mem::{MemSnapshot, SharedMem};
use crate::process::{Footprint, Implementation, MemCtx, ProcessHandle};
use crate::trace::Trace;

/// A pending high-level operation of one process.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Pending<S: ObjectSpec> {
    id: OpId,
    op: S::Op,
    read_only: bool,
}

/// An executor holds one configuration of the system — the shared memory and
/// every process's local state — plus the induced history, and advances the
/// execution one step at a time under external scheduling control.
///
/// Executors are `Clone`: forking an executor forks the execution, which is
/// how the exhaustive explorer and the §5 adversary build their execution
/// trees.
///
/// # Example
///
/// See the crate-level documentation for a complete example.
#[derive(Clone, Debug)]
pub struct Executor<S: ObjectSpec, I: Implementation<S>> {
    spec: S,
    imp: I,
    mem: SharedMem,
    procs: Vec<I::Process>,
    pending: Vec<Option<Pending<S>>>,
    history: History<S::Op, S::Resp>,
    steps: u64,
    trace: Option<Trace>,
    last_access: Option<Footprint>,
}

impl<S: ObjectSpec, I: Implementation<S>> Executor<S, I> {
    /// Creates an executor in the implementation's initial configuration.
    pub fn new(imp: I) -> Self {
        let n = imp.num_processes();
        Executor {
            spec: imp.spec().clone(),
            mem: imp.init_memory(),
            procs: (0..n).map(|i| imp.make_process(Pid(i))).collect(),
            pending: (0..n).map(|_| None).collect(),
            history: History::new(),
            steps: 0,
            trace: None,
            last_access: None,
            imp,
        }
    }

    /// The abstract object's specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// The implementation this executor runs.
    pub fn implementation(&self) -> &I {
        &self.imp
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// The shared memory of the current configuration.
    pub fn mem(&self) -> &SharedMem {
        &self.mem
    }

    /// `mem(C)` of the current configuration.
    pub fn snapshot(&self) -> MemSnapshot {
        self.mem.snapshot()
    }

    /// The history induced so far.
    pub fn history(&self) -> &History<S::Op, S::Resp> {
        &self.history
    }

    /// The local state of process `pid` (for indistinguishability checks).
    pub fn process(&self, pid: Pid) -> &I::Process {
        &self.procs[pid.0]
    }

    /// Total number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The single memory access of the most recent [`step`](Executor::step),
    /// if that step performed a primitive (`None` after a purely local step,
    /// after an invocation, or before any step).
    ///
    /// The `MemCtx` discipline guarantees one primitive per step, so this
    /// footprint is exactly the independence information the schedule-space
    /// model checker (`hi_spec::explore`) needs about the transition it
    /// just executed.
    pub fn last_access(&self) -> Option<Footprint> {
        self.last_access
    }

    /// Starts recording a [`Trace`] of all primitives.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Stops tracing and returns the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Whether `pid` has a pending operation (and can therefore take steps).
    pub fn can_step(&self, pid: Pid) -> bool {
        self.pending[pid.0].is_some()
    }

    /// The pending operation of `pid`, if any.
    pub fn pending_op(&self, pid: Pid) -> Option<&S::Op> {
        self.pending[pid.0].as_ref().map(|p| &p.op)
    }

    /// Whether the current configuration is quiescent: no pending operation
    /// (paper §2).
    pub fn is_quiescent(&self) -> bool {
        self.pending.iter().all(Option::is_none)
    }

    /// Whether the current configuration is state-quiescent: no pending
    /// *state-changing* operation (Definition 7; read-only operations may be
    /// ongoing).
    pub fn is_state_quiescent(&self) -> bool {
        self.pending.iter().flatten().all(|p| p.read_only)
    }

    /// Invokes `op` on process `pid` and returns the operation id.
    ///
    /// # Panics
    ///
    /// Panics if `pid` already has a pending operation.
    pub fn invoke(&mut self, pid: Pid, op: S::Op) -> OpId {
        assert!(
            self.pending[pid.0].is_none(),
            "{pid} already has a pending operation"
        );
        let id = self.history.invoke(pid, op.clone());
        let read_only = self.spec.is_read_only(&op);
        self.procs[pid.0].invoke(op.clone());
        self.pending[pid.0] = Some(Pending { id, op, read_only });
        self.last_access = None;
        id
    }

    /// Executes one step of process `pid`. Returns `Some((id, resp))` if the
    /// pending operation completed at this step.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no pending operation.
    pub fn step(&mut self, pid: Pid) -> Option<(OpId, S::Resp)> {
        let pending = self.pending[pid.0]
            .as_ref()
            .expect("step of idle process")
            .clone();
        let result = {
            let mut ctx = MemCtx::new(&mut self.mem, self.trace.as_mut(), pid, self.steps);
            let result = self.procs[pid.0].step(&mut ctx);
            self.last_access = ctx.footprint();
            result
        };
        self.steps += 1;
        match result {
            Some(resp) => {
                self.history.ret(pending.id, resp.clone());
                self.pending[pid.0] = None;
                Some((pending.id, resp))
            }
            None => None,
        }
    }

    /// Runs process `pid` solo until its pending operation returns.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::StepLimit`] if the operation does not return
    /// within `max_steps` steps — which, for a solo run of an
    /// obstruction-free implementation, indicates a bug.
    pub fn run_solo(&mut self, pid: Pid, max_steps: u64) -> Result<(OpId, S::Resp), RunError> {
        for _ in 0..max_steps {
            if let Some(done) = self.step(pid) {
                return Ok(done);
            }
        }
        Err(RunError::StepLimit {
            pid,
            steps: max_steps,
        })
    }

    /// Invokes `op` on `pid` and runs it solo to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::StepLimit`] if the operation does not return
    /// within `max_steps` steps.
    pub fn run_op_solo(
        &mut self,
        pid: Pid,
        op: S::Op,
        max_steps: u64,
    ) -> Result<S::Resp, RunError> {
        self.invoke(pid, op);
        self.run_solo(pid, max_steps).map(|(_, resp)| resp)
    }

    /// Whether the local states of all processes equal those of `other`
    /// (used by the lower-bound adversary's indistinguishability argument).
    pub fn processes_eq(&self, other: &Self) -> bool {
        self.procs == other.procs
    }
}

/// Errors from driving an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunError {
    /// An operation failed to complete within the step budget.
    StepLimit {
        /// The process whose operation did not return.
        pid: Pid,
        /// The budget that was exhausted.
        steps: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimit { pid, steps } => {
                write!(f, "operation by {pid} did not return within {steps} steps")
            }
        }
    }
}

impl Error for RunError {}
