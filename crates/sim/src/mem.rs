//! Shared base objects and memory snapshots.

use std::fmt;

/// Index of a base object in the shared memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId(pub usize);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The declared state space of a base object.
///
/// The paper's impossibility results hinge on the number of states a base
/// object can take (e.g. binary registers have 2 states; Theorem 17 applies
/// when every base object has fewer than `t` states). Declaring the domain
/// lets the simulator enforce it and lets the lower-bound adversary inspect
/// it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellDomain {
    /// A binary register: values in `{0, 1}`.
    Binary,
    /// A bounded object with the given number of states: values in
    /// `0..states`.
    Bounded(u64),
    /// An unconstrained 64-bit word (used by the universal construction,
    /// whose base objects are deliberately large).
    Word,
}

impl CellDomain {
    /// The number of states, if bounded.
    pub fn states(&self) -> Option<u64> {
        match self {
            CellDomain::Binary => Some(2),
            CellDomain::Bounded(s) => Some(*s),
            CellDomain::Word => None,
        }
    }

    /// Whether `value` is legal for this domain.
    pub fn contains(&self, value: u64) -> bool {
        match self.states() {
            Some(s) => value < s,
            None => true,
        }
    }
}

/// Metadata of one base object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellInfo {
    /// Human-readable name (e.g. `A[3]`), used in traces.
    pub name: String,
    /// Declared state space.
    pub domain: CellDomain,
}

/// The memory representation `mem(C)`: the states of all base objects.
pub type MemSnapshot = Vec<u64>;

/// The shared memory: a vector of base objects, each a `u64` with declared
/// domain.
///
/// Implementations allocate their cells once at construction time (fixing
/// the memory layout, as required for canonical representations) and the
/// executor clones the initial memory for each run.
///
/// # Example
///
/// ```
/// use hi_sim::{CellDomain, SharedMem};
///
/// let mut mem = SharedMem::new();
/// let a = mem.alloc_array("A", 3, CellDomain::Binary, 0);
/// mem.write(a[1], 1);
/// assert_eq!(mem.snapshot(), vec![0, 1, 0]);
/// assert!(mem.cas(a[1], 1, 0));
/// assert!(!mem.cas(a[1], 1, 0), "CAS fails on stale expected value");
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SharedMem {
    cells: Vec<u64>,
    info: Vec<CellInfo>,
}

impl SharedMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SharedMem::default()
    }

    /// Allocates one cell with the given name, domain and initial value.
    ///
    /// # Panics
    ///
    /// Panics if `init` is outside `domain`.
    pub fn alloc(&mut self, name: impl Into<String>, domain: CellDomain, init: u64) -> CellId {
        assert!(domain.contains(init), "initial value out of domain");
        let id = CellId(self.cells.len());
        self.cells.push(init);
        self.info.push(CellInfo {
            name: name.into(),
            domain,
        });
        id
    }

    /// Allocates `n` cells named `prefix[0] … prefix[n-1]`, all with the same
    /// domain and initial value.
    pub fn alloc_array(
        &mut self,
        prefix: &str,
        n: usize,
        domain: CellDomain,
        init: u64,
    ) -> Vec<CellId> {
        (0..n)
            .map(|i| self.alloc(format!("{prefix}[{i}]"), domain, init))
            .collect()
    }

    /// Number of base objects.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads the state of a base object.
    pub fn read(&self, cell: CellId) -> u64 {
        self.cells[cell.0]
    }

    /// Writes the state of a base object.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the cell's declared domain.
    pub fn write(&mut self, cell: CellId, value: u64) {
        assert!(
            self.info[cell.0].domain.contains(value),
            "write of {value} outside domain of {}",
            self.info[cell.0].name
        );
        self.cells[cell.0] = value;
    }

    /// Compare-and-swap: if the cell holds `expected`, replace it with `new`
    /// and return `true`; otherwise leave it unchanged and return `false`.
    ///
    /// # Panics
    ///
    /// Panics if `new` is outside the cell's declared domain.
    pub fn cas(&mut self, cell: CellId, expected: u64, new: u64) -> bool {
        assert!(
            self.info[cell.0].domain.contains(new),
            "CAS to {new} outside domain of {}",
            self.info[cell.0].name
        );
        if self.cells[cell.0] == expected {
            self.cells[cell.0] = new;
            true
        } else {
            false
        }
    }

    /// The memory representation `mem(C)` of the current configuration.
    pub fn snapshot(&self) -> MemSnapshot {
        self.cells.clone()
    }

    /// Metadata of one cell.
    pub fn info(&self, cell: CellId) -> &CellInfo {
        &self.info[cell.0]
    }

    /// The name of one cell (convenience for trace rendering).
    pub fn name(&self, cell: CellId) -> &str {
        &self.info[cell.0].name
    }

    /// Iterates over `(id, info, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &CellInfo, u64)> {
        self.info
            .iter()
            .zip(self.cells.iter())
            .enumerate()
            .map(|(i, (info, v))| (CellId(i), info, *v))
    }

    /// Renders a snapshot against this memory's layout, e.g.
    /// `A[0]=1 A[1]=0 flag=1`.
    pub fn render_snapshot(&self, snap: &MemSnapshot) -> String {
        assert_eq!(snap.len(), self.cells.len(), "snapshot/layout mismatch");
        self.info
            .iter()
            .zip(snap.iter())
            .map(|(info, v)| format!("{}={}", info.name, v))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The Hamming distance between two snapshots: the number of base
    /// objects on which they differ (the paper's `distance` in Proposition 6).
    pub fn distance(a: &MemSnapshot, b: &MemSnapshot) -> usize {
        assert_eq!(a.len(), b.len(), "snapshots of different layouts");
        a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("x", CellDomain::Word, 42);
        assert_eq!(mem.read(c), 42);
        mem.write(c, 7);
        assert_eq!(mem.read(c), 7);
        assert_eq!(mem.name(c), "x");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn binary_rejects_two() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("b", CellDomain::Binary, 0);
        mem.write(c, 2);
    }

    #[test]
    fn cas_semantics() {
        let mut mem = SharedMem::new();
        let c = mem.alloc("x", CellDomain::Bounded(10), 5);
        assert!(mem.cas(c, 5, 6));
        assert_eq!(mem.read(c), 6);
        assert!(!mem.cas(c, 5, 7));
        assert_eq!(mem.read(c), 6);
    }

    #[test]
    fn snapshot_distance() {
        assert_eq!(SharedMem::distance(&vec![1, 0, 1], &vec![1, 1, 0]), 2);
        assert_eq!(SharedMem::distance(&vec![], &vec![]), 0);
    }

    #[test]
    fn array_names() {
        let mut mem = SharedMem::new();
        let a = mem.alloc_array("A", 2, CellDomain::Binary, 0);
        assert_eq!(mem.name(a[0]), "A[0]");
        assert_eq!(mem.name(a[1]), "A[1]");
    }

    #[test]
    fn render() {
        let mut mem = SharedMem::new();
        mem.alloc("x", CellDomain::Word, 1);
        mem.alloc("y", CellDomain::Word, 2);
        assert_eq!(mem.render_snapshot(&mem.snapshot()), "x=1 y=2");
    }
}
