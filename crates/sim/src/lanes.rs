//! Figure-style rendering of traces: one lane per process, one column per
//! step, in the visual language of the paper's execution diagrams.

use hi_core::Pid;

use crate::mem::SharedMem;
use crate::trace::{PrimKind, Trace};

/// Renders a trace as per-process lanes:
///
/// ```text
/// p0 | W A[2]=1 | W A[1]=0 |          |
/// p1 |          |          | R A[1]=0 |
/// ```
///
/// Each column is one global step; `W`/`R`/`C` mark writes, reads and CAS
/// primitives. Intended for the short executions of the figure
/// reproductions; long traces produce wide output (use
/// [`Trace::render`] for a vertical listing instead).
pub fn render_lanes(trace: &Trace, mem: &SharedMem, num_processes: usize) -> String {
    let events = trace.events();
    if events.is_empty() {
        return String::new();
    }
    let first = events.first().unwrap().step;
    let last = events.last().unwrap().step;
    let columns = (last - first + 1) as usize;
    let mut cells: Vec<Vec<String>> = vec![vec![String::new(); columns]; num_processes];
    for ev in events {
        let col = (ev.step - first) as usize;
        let name = mem.name(ev.cell);
        let text = match ev.kind {
            PrimKind::Read => format!("R {name}={}", ev.value),
            PrimKind::Write => format!("W {name}={}", ev.value),
            PrimKind::Cas { ok, .. } => {
                format!("C {name}{}", if ok { "!" } else { "?" })
            }
        };
        if ev.pid.0 < num_processes {
            cells[ev.pid.0][col] = text;
        }
    }
    let width = cells
        .iter()
        .flat_map(|lane| lane.iter().map(String::len))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    for (pid, lane) in cells.iter().enumerate() {
        out.push_str(&format!("{} |", Pid(pid)));
        for cell in lane {
            out.push_str(&format!(" {cell:<width$} |"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::CellDomain;

    #[test]
    fn lanes_align_by_step() {
        let mut mem = SharedMem::new();
        let a = mem.alloc("A[1]", CellDomain::Binary, 0);
        let b = mem.alloc("A[2]", CellDomain::Binary, 0);
        let mut t = Trace::new();
        t.record(0, Pid(0), a, PrimKind::Write, 1);
        t.record(1, Pid(1), b, PrimKind::Read, 0);
        t.record(
            2,
            Pid(0),
            a,
            PrimKind::Cas {
                expected: 1,
                new: 0,
                ok: true,
            },
            0,
        );
        let lanes = render_lanes(&t, &mem, 2);
        let lines: Vec<&str> = lanes.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("W A[1]=1"), "{lanes}");
        assert!(lines[1].contains("R A[2]=0"), "{lanes}");
        assert!(lines[0].contains("C A[1]!"), "{lanes}");
        // p1's lane is empty where p0 acted and vice versa.
        assert_eq!(lines[0].matches('|').count(), lines[1].matches('|').count());
    }

    #[test]
    fn empty_trace_renders_empty() {
        let mem = SharedMem::new();
        let t = Trace::new();
        assert_eq!(render_lanes(&t, &mem, 2), "");
    }
}
