//! Schedulers: who takes the next step.
//!
//! The asynchronous model places no fairness constraints on the adversary
//! scheduler; these schedulers cover the spectrum used by the test suites:
//! deterministic rotation, seeded randomness (for reproducible stress), and
//! fully scripted schedules (for reproducing the paper's figures).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hi_core::Pid;

/// Chooses the next process to step among the enabled ones.
pub trait Scheduler {
    /// Picks one of `enabled` (never empty).
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid;
}

/// Rotates through processes in pid order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    last: Option<Pid>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        assert!(!enabled.is_empty(), "no enabled process");
        let next = match self.last {
            None => enabled[0],
            Some(last) => *enabled.iter().find(|p| p.0 > last.0).unwrap_or(&enabled[0]),
        };
        self.last = Some(next);
        next
    }
}

/// Picks uniformly at random among enabled processes, from a seed.
///
/// Equal seeds give equal schedules, so stress-test failures are
/// reproducible from the reported seed alone.
#[derive(Clone, Debug)]
pub struct Seeded {
    rng: StdRng,
}

impl Seeded {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> Self {
        Seeded {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for Seeded {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        assert!(!enabled.is_empty(), "no enabled process");
        enabled[self.rng.gen_range(0..enabled.len())]
    }
}

/// Follows an explicit schedule, then falls back to round-robin.
///
/// Scripted entries naming a process that is not enabled are skipped; this
/// makes figure scripts robust to the exact number of steps an operation
/// takes.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<Pid>,
    pos: usize,
    fallback: RoundRobin,
}

impl Scripted {
    /// Creates a scheduler following `script`.
    pub fn new(script: Vec<Pid>) -> Self {
        Scripted {
            script,
            pos: 0,
            fallback: RoundRobin::new(),
        }
    }

    /// Convenience: a script of `(pid, repeat)` runs.
    ///
    /// # Example
    ///
    /// ```
    /// use hi_sim::{Scripted, Pid};
    /// // 3 steps of p0, then 2 of p1, then 1 of p0.
    /// let sched = Scripted::runs(&[(0, 3), (1, 2), (0, 1)]);
    /// # let _ = sched;
    /// ```
    pub fn runs(runs: &[(usize, usize)]) -> Self {
        let mut script = Vec::new();
        for &(pid, n) in runs {
            script.extend(std::iter::repeat(Pid(pid)).take(n));
        }
        Scripted::new(script)
    }

    /// Whether the script has been fully consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.script.len()
    }
}

impl Scheduler for Scripted {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        while self.pos < self.script.len() {
            let pid = self.script[self.pos];
            self.pos += 1;
            if enabled.contains(&pid) {
                return pid;
            }
        }
        self.fallback.next_pid(enabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::new();
        let enabled = [Pid(0), Pid(1), Pid(2)];
        let picks: Vec<_> = (0..6).map(|_| rr.next_pid(&enabled).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_disabled() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.next_pid(&[Pid(0), Pid(2)]), Pid(0));
        assert_eq!(rr.next_pid(&[Pid(0), Pid(2)]), Pid(2));
        assert_eq!(rr.next_pid(&[Pid(0), Pid(2)]), Pid(0));
    }

    #[test]
    fn seeded_is_reproducible() {
        let enabled = [Pid(0), Pid(1), Pid(2), Pid(3)];
        let a: Vec<_> = {
            let mut s = Seeded::new(42);
            (0..32).map(|_| s.next_pid(&enabled).0).collect()
        };
        let b: Vec<_> = {
            let mut s = Seeded::new(42);
            (0..32).map(|_| s.next_pid(&enabled).0).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scripted_skips_and_falls_back() {
        let mut s = Scripted::runs(&[(1, 2), (0, 1)]);
        assert_eq!(s.next_pid(&[Pid(0), Pid(1)]), Pid(1));
        // p1 disabled: the scripted p1 entry is skipped, p0 served.
        assert_eq!(s.next_pid(&[Pid(0)]), Pid(0));
        assert!(s.exhausted());
        // Fallback round-robin afterwards, starting from the first enabled.
        assert_eq!(s.next_pid(&[Pid(0), Pid(1)]), Pid(0));
        assert_eq!(s.next_pid(&[Pid(0), Pid(1)]), Pid(1));
    }
}
