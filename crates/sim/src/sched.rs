//! Schedulers: who takes the next step.
//!
//! The asynchronous model places no fairness constraints on the adversary
//! scheduler; these schedulers cover the spectrum used by the test suites:
//! deterministic rotation, seeded randomness (for reproducible stress), and
//! fully scripted schedules (for reproducing the paper's figures).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hi_core::Pid;

/// Chooses the next process to step among the enabled ones.
pub trait Scheduler {
    /// Picks one of `enabled` (never empty).
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid;
}

/// Rotates through processes in pid order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    last: Option<Pid>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        assert!(!enabled.is_empty(), "no enabled process");
        let next = match self.last {
            None => enabled[0],
            Some(last) => *enabled.iter().find(|p| p.0 > last.0).unwrap_or(&enabled[0]),
        };
        self.last = Some(next);
        next
    }
}

/// Picks uniformly at random among enabled processes, from a seed.
///
/// Equal seeds give equal schedules, so stress-test failures are
/// reproducible from the reported seed alone.
#[derive(Clone, Debug)]
pub struct Seeded {
    rng: StdRng,
}

impl Seeded {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> Self {
        Seeded {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for Seeded {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        assert!(!enabled.is_empty(), "no enabled process");
        enabled[self.rng.gen_range(0..enabled.len())]
    }
}

/// Follows an explicit schedule, then falls back to round-robin.
///
/// Scripted entries naming a process that is not enabled are skipped; this
/// makes figure scripts robust to the exact number of steps an operation
/// takes.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<Pid>,
    pos: usize,
    fallback: RoundRobin,
}

impl Scripted {
    /// Creates a scheduler following `script`.
    pub fn new(script: Vec<Pid>) -> Self {
        Scripted {
            script,
            pos: 0,
            fallback: RoundRobin::new(),
        }
    }

    /// Convenience: a script of `(pid, repeat)` runs.
    ///
    /// # Example
    ///
    /// ```
    /// use hi_sim::{Scripted, Pid};
    /// // 3 steps of p0, then 2 of p1, then 1 of p0.
    /// let sched = Scripted::runs(&[(0, 3), (1, 2), (0, 1)]);
    /// # let _ = sched;
    /// ```
    pub fn runs(runs: &[(usize, usize)]) -> Self {
        let mut script = Vec::new();
        for &(pid, n) in runs {
            script.extend(std::iter::repeat(Pid(pid)).take(n));
        }
        Scripted::new(script)
    }

    /// Whether the script has been fully consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.script.len()
    }
}

impl Scheduler for Scripted {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        while self.pos < self.script.len() {
            let pid = self.script[self.pos];
            self.pos += 1;
            if enabled.contains(&pid) {
                return pid;
            }
        }
        self.fallback.next_pid(enabled)
    }
}

/// A single injected fault.
///
/// Fault points are counted in *transitions of the affected process* (its
/// invocations plus its steps, as taken under the wrapped scheduler), not in
/// global time — so "crash the writer after 3 of its transitions" means the
/// same thing under every base schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// `pid` crashes once it has taken `after` transitions: it never takes
    /// another step, and its memory contribution stays static forever.
    /// `after = 0` crashes the process before it does anything at all.
    Crash {
        /// The crashing process.
        pid: Pid,
        /// How many of its own transitions it takes before crashing.
        after: u64,
    },
    /// `pid` stalls once it has taken `after` transitions, and resumes after
    /// `hold` further *global* transitions have elapsed — a scheduling
    /// perturbation (a long page fault), not a failure. Unlike a crash, a
    /// stall must be survivable by every progress class.
    Stall {
        /// The stalling process.
        pid: Pid,
        /// How many of its own transitions it takes before stalling.
        after: u64,
        /// For how many global transitions it stays off the schedule.
        hold: u64,
    },
}

impl Fault {
    /// The process this fault affects.
    pub fn pid(&self) -> Pid {
        match self {
            Fault::Crash { pid, .. } | Fault::Stall { pid, .. } => *pid,
        }
    }
}

/// A set of faults to inject into one run: the adversary's script.
///
/// Build plans with [`FaultPlan::crash`]/[`FaultPlan::stall`] and chain more
/// faults with [`FaultPlan::and_crash`]/[`FaultPlan::and_stall`]; realize
/// them by wrapping any [`Scheduler`] in a [`Faulty`] combinator.
///
/// # Example
///
/// ```
/// use hi_sim::{FaultPlan, Pid};
/// // Crash p0 after 3 of its transitions, and stall p2 for 16 transitions
/// // right at its start.
/// let plan = FaultPlan::crash(Pid(0), 3).and_stall(Pid(2), 0, 16);
/// assert_eq!(plan.faults().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults (the wrapped scheduler runs unchanged).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single crash of `pid` after `after` of its transitions.
    pub fn crash(pid: Pid, after: u64) -> Self {
        FaultPlan::none().and_crash(pid, after)
    }

    /// A plan with a single stall of `pid` after `after` of its transitions,
    /// held for `hold` global transitions.
    pub fn stall(pid: Pid, after: u64, hold: u64) -> Self {
        FaultPlan::none().and_stall(pid, after, hold)
    }

    /// A plan crashing every process except `survivor` at the given per-pid
    /// points (`points[p]` is ignored for the survivor) — the wait-freedom
    /// scenario: everyone else dies mid-operation.
    pub fn crash_all_except(survivor: Pid, points: &[u64]) -> Self {
        let mut plan = FaultPlan::none();
        for (p, &after) in points.iter().enumerate() {
            if p != survivor.0 {
                plan = plan.and_crash(Pid(p), after);
            }
        }
        plan
    }

    /// Adds a crash fault.
    pub fn and_crash(mut self, pid: Pid, after: u64) -> Self {
        self.faults.push(Fault::Crash { pid, after });
        self
    }

    /// Adds a stall fault.
    pub fn and_stall(mut self, pid: Pid, after: u64, hold: u64) -> Self {
        self.faults.push(Fault::Stall { pid, after, hold });
        self
    }

    /// The faults in this plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether the plan contains any crash fault.
    pub fn has_crash(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::Crash { .. }))
    }
}

/// A scheduler combinator injecting the faults of a [`FaultPlan`] into any
/// base [`Scheduler`].
///
/// `Faulty` counts each process's transitions (every pid it returns) and a
/// global transition clock. A process whose crash point has been reached is
/// removed from the enabled set before the base scheduler picks; a stalled
/// process is removed until its hold expires. If *every* enabled process is
/// merely stalled, the global clock fast-forwards to the earliest resume
/// point, so stalls cannot deadlock a run.
///
/// Determinism: the combinator is pure bookkeeping over the base scheduler,
/// so equal `(base scheduler state, plan)` give equal schedules — and until
/// the first fault activates, the schedule is *identical* to the fault-free
/// one, which is what makes sampled crash points meaningful.
///
/// Use with [`run_workload_with_faults`](crate::run_workload_with_faults),
/// which also excludes crashed processes' queued operations.
///
/// # Panics
///
/// [`Scheduler::next_pid`] panics if every enabled process is *crashed* —
/// the fault-aware runner never lets that happen (crashed processes are not
/// enabled), but a raw `run_workload` over a `Faulty` can.
#[derive(Clone, Debug)]
pub struct Faulty<Sch> {
    inner: Sch,
    plan: FaultPlan,
    /// Transitions taken per pid.
    taken: Vec<u64>,
    /// Global transition clock.
    global: u64,
    /// Per-fault stall activation: `Some(resume_at)` once triggered.
    stall_until: Vec<Option<u64>>,
}

impl<Sch> Faulty<Sch> {
    /// Wraps `inner`, injecting `plan`, for `n` processes.
    pub fn new(inner: Sch, plan: FaultPlan, n: usize) -> Self {
        for f in plan.faults() {
            assert!(f.pid().0 < n, "fault plan names pid {:?} >= n={n}", f.pid());
        }
        let stall_until = vec![None; plan.faults().len()];
        Faulty {
            inner,
            plan,
            taken: vec![0; n],
            global: 0,
            stall_until,
        }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many transitions `pid` has taken.
    pub fn taken(&self, pid: Pid) -> u64 {
        self.taken[pid.0]
    }

    /// The global transition count.
    pub fn global(&self) -> u64 {
        self.global
    }

    /// Whether `pid`'s crash point has been reached: it will never be
    /// scheduled again.
    pub fn crashed(&self, pid: Pid) -> bool {
        self.plan.faults().iter().any(|f| match f {
            Fault::Crash { pid: p, after } => *p == pid && self.taken[pid.0] >= *after,
            Fault::Stall { .. } => false,
        })
    }

    /// Whether any crash is active yet — i.e. the configuration already
    /// contains a crashed process (the adversary's post-crash world).
    pub fn any_crash_active(&self) -> bool {
        (0..self.taken.len()).any(|p| self.crashed(Pid(p)))
    }

    /// Whether `pid` is currently blocked (crashed, or inside an active
    /// stall window).
    pub fn blocked(&self, pid: Pid) -> bool {
        if self.crashed(pid) {
            return true;
        }
        self.plan
            .faults()
            .iter()
            .zip(&self.stall_until)
            .any(|(f, until)| f.pid() == pid && matches!(until, Some(t) if self.global < *t))
    }

    /// Activates any stall whose trigger point has been reached.
    fn refresh_stalls(&mut self) {
        for (i, f) in self.plan.faults().iter().enumerate() {
            if let Fault::Stall { pid, after, hold } = f {
                if self.stall_until[i].is_none() && self.taken[pid.0] >= *after {
                    self.stall_until[i] = Some(self.global + hold);
                }
            }
        }
    }

    /// Advances the global clock to the earliest active stall resume point.
    /// Returns `false` if there is none (every blocked process is crashed).
    fn fast_forward(&mut self) -> bool {
        let next = self
            .stall_until
            .iter()
            .filter_map(|u| *u)
            .filter(|&t| t > self.global)
            .min();
        match next {
            Some(t) => {
                self.global = t;
                true
            }
            None => false,
        }
    }
}

impl<Sch: Scheduler> Scheduler for Faulty<Sch> {
    fn next_pid(&mut self, enabled: &[Pid]) -> Pid {
        assert!(!enabled.is_empty(), "no enabled process");
        loop {
            self.refresh_stalls();
            let alive: Vec<Pid> = enabled
                .iter()
                .copied()
                .filter(|&p| !self.blocked(p))
                .collect();
            if !alive.is_empty() {
                let pid = self.inner.next_pid(&alive);
                self.taken[pid.0] += 1;
                self.global += 1;
                return pid;
            }
            assert!(
                self.fast_forward(),
                "fault plan crashed every enabled process: {:?}",
                self.plan
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::new();
        let enabled = [Pid(0), Pid(1), Pid(2)];
        let picks: Vec<_> = (0..6).map(|_| rr.next_pid(&enabled).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_disabled() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.next_pid(&[Pid(0), Pid(2)]), Pid(0));
        assert_eq!(rr.next_pid(&[Pid(0), Pid(2)]), Pid(2));
        assert_eq!(rr.next_pid(&[Pid(0), Pid(2)]), Pid(0));
    }

    #[test]
    fn seeded_is_reproducible() {
        let enabled = [Pid(0), Pid(1), Pid(2), Pid(3)];
        let a: Vec<_> = {
            let mut s = Seeded::new(42);
            (0..32).map(|_| s.next_pid(&enabled).0).collect()
        };
        let b: Vec<_> = {
            let mut s = Seeded::new(42);
            (0..32).map(|_| s.next_pid(&enabled).0).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scripted_skips_and_falls_back() {
        let mut s = Scripted::runs(&[(1, 2), (0, 1)]);
        assert_eq!(s.next_pid(&[Pid(0), Pid(1)]), Pid(1));
        // p1 disabled: the scripted p1 entry is skipped, p0 served.
        assert_eq!(s.next_pid(&[Pid(0)]), Pid(0));
        assert!(s.exhausted());
        // Fallback round-robin afterwards, starting from the first enabled.
        assert_eq!(s.next_pid(&[Pid(0), Pid(1)]), Pid(0));
        assert_eq!(s.next_pid(&[Pid(0), Pid(1)]), Pid(1));
    }

    #[test]
    fn faulty_with_empty_plan_matches_base_schedule() {
        let enabled = [Pid(0), Pid(1), Pid(2)];
        let base: Vec<_> = {
            let mut s = Seeded::new(7);
            (0..64).map(|_| s.next_pid(&enabled).0).collect()
        };
        let wrapped: Vec<_> = {
            let mut s = Faulty::new(Seeded::new(7), FaultPlan::none(), 3);
            (0..64).map(|_| s.next_pid(&enabled).0).collect()
        };
        assert_eq!(base, wrapped);
    }

    #[test]
    fn crash_removes_pid_after_its_point() {
        let enabled = [Pid(0), Pid(1)];
        let mut s = Faulty::new(RoundRobin::new(), FaultPlan::crash(Pid(0), 2), 2);
        let picks: Vec<_> = (0..6).map(|_| s.next_pid(&enabled).0).collect();
        // p0 takes exactly 2 transitions, then only p1 is ever scheduled.
        assert_eq!(picks.iter().filter(|&&p| p == 0).count(), 2);
        assert_eq!(&picks[3..], &[1, 1, 1]);
        assert!(s.crashed(Pid(0)));
        assert!(!s.crashed(Pid(1)));
        assert!(s.any_crash_active());
    }

    #[test]
    fn crash_at_zero_is_active_immediately() {
        let s = Faulty::new(RoundRobin::new(), FaultPlan::crash(Pid(1), 0), 2);
        assert!(s.crashed(Pid(1)));
        assert!(s.any_crash_active());
    }

    #[test]
    fn stall_holds_then_resumes() {
        let enabled = [Pid(0), Pid(1)];
        // p0 stalls immediately for 4 global transitions, then resumes.
        let mut s = Faulty::new(RoundRobin::new(), FaultPlan::stall(Pid(0), 0, 4), 2);
        let picks: Vec<_> = (0..8).map(|_| s.next_pid(&enabled).0).collect();
        assert_eq!(&picks[..4], &[1, 1, 1, 1], "p0 held off the schedule");
        assert!(picks[4..].contains(&0), "p0 resumes after the hold");
        assert!(!s.blocked(Pid(0)));
    }

    #[test]
    fn lone_stalled_process_fast_forwards() {
        // Only p0 is enabled and it is stalled: the clock jumps to the
        // resume point instead of deadlocking.
        let mut s = Faulty::new(RoundRobin::new(), FaultPlan::stall(Pid(0), 0, 100), 1);
        assert_eq!(s.next_pid(&[Pid(0)]), Pid(0));
        assert!(s.global() > 100);
    }

    #[test]
    #[should_panic(expected = "crashed every enabled process")]
    fn all_crashed_enabled_panics() {
        let mut s = Faulty::new(RoundRobin::new(), FaultPlan::crash(Pid(0), 0), 2);
        s.next_pid(&[Pid(0)]);
    }
}
