#![forbid(unsafe_code)]
//! Shared helpers for the Criterion benchmarks that regenerate the paper's
//! Table 1 and Figures 1–5. See `benches/` for the individual harnesses and
//! `EXPERIMENTS.md` at the workspace root for the paper-vs-measured record.

pub mod delta;
pub mod hist;
pub mod json;

use hi_core::ObjectSpec;
use hi_sim::{run_workload, Executor, Implementation, Scheduler, Workload};

/// Runs a workload to completion and returns the number of steps taken —
/// the benchmarks' unit of simulated work.
///
/// # Panics
///
/// Panics if the run exceeds `max_steps` (benchmarks size their workloads to
/// terminate).
pub fn run_to_completion<S, I, Sch>(
    imp: &I,
    workload: Workload<S>,
    sched: &mut Sch,
    max_steps: u64,
) -> u64
where
    S: ObjectSpec,
    I: Implementation<S>,
    Sch: Scheduler,
{
    let mut exec = Executor::new(imp.clone());
    run_workload(&mut exec, workload, sched, &mut (), max_steps)
        .expect("benchmark workload exceeded its step budget");
    exec.steps()
}
