//! Cross-PR latency regression gating: parses two revision-keyed
//! `BENCH_service_latency.json` documents (the committed baseline and a
//! freshly measured run), computes per-scenario deltas on the metrics that
//! matter (`p50_ns`, `p99_ns`, `ops_per_sec`), and renders them as a table
//! for the CI `bench-delta` job.
//!
//! The comparison is deliberately noise-aware: a delta only counts as a
//! regression when it moves in the *worse* direction (latency up,
//! throughput down) by more than a relative threshold. Thresholds are
//! per-scenario ([`Thresholds`], parsed from a committed
//! `thresholds.json`): established scenarios gate at their calibrated
//! noise level, while scenarios listed warn-only — new ones still
//! accumulating a baseline, or known-noisy ones — report regressions
//! without failing a `--strict` run. Scenarios present on only one side
//! are reported as added/removed, never as regressions — a new scenario
//! has no baseline to regress against.
//!
//! No serde: the parser below is a self-contained recursive-descent JSON
//! reader, sized for the flat documents [`crate::json::render_latency`]
//! emits but accepting any well-formed JSON (so hand-edited baselines and
//! future extra fields keep parsing).

use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON reader.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are held as `f64` — every field the delta
/// tool reads is either an exact small integer or already a float.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'"' => self.string().map(Json::Str),
            b'{' => self.object(),
            b'[' => self.array(),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our documents;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(self.err(&format!("bad escape '\\{}'", c as char))),
                    }
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar, not a byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Latency document model.
// ---------------------------------------------------------------------------

/// One scenario row of a parsed latency document: the scenario name plus
/// every numeric field, keyed by field name (so the model survives field
/// additions without a schema change).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRow {
    /// The scenario name (e.g. `"soak/hashtable-zipf"`).
    pub scenario: String,
    /// Every numeric field of the row, by JSON field name.
    pub metrics: BTreeMap<String, f64>,
}

impl ScenarioRow {
    /// The named numeric field, if present.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }
}

/// A parsed `BENCH_service_latency.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyDoc {
    /// The `bench` field (e.g. `"service_latency"`).
    pub bench: String,
    /// The git revision the document was measured at.
    pub revision: String,
    /// One row per scenario, in document order.
    pub rows: Vec<ScenarioRow>,
}

impl LatencyDoc {
    /// The row for a scenario name, if present.
    pub fn row(&self, scenario: &str) -> Option<&ScenarioRow> {
        self.rows.iter().find(|r| r.scenario == scenario)
    }
}

/// Parses a latency summary document as emitted by
/// [`crate::json::render_latency`].
///
/// # Errors
///
/// A human-readable message when the text is not well-formed JSON or lacks
/// the expected top-level shape (`bench`/`revision` strings and a `results`
/// array of objects each carrying a `"scenario"` string).
pub fn parse_latency_doc(text: &str) -> Result<LatencyDoc, String> {
    let mut p = Parser::new(text);
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing \"bench\" string")?
        .to_string();
    let revision = doc
        .get("revision")
        .and_then(Json::as_str)
        .ok_or("missing \"revision\" string")?
        .to_string();
    let results = match doc.get("results") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing \"results\" array".to_string()),
    };
    let mut rows = Vec::with_capacity(results.len());
    for (i, row) in results.iter().enumerate() {
        let scenario = row
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}]: missing \"scenario\" string"))?
            .to_string();
        let mut metrics = BTreeMap::new();
        if let Json::Obj(fields) = row {
            for (k, v) in fields {
                if let Some(n) = v.as_num() {
                    metrics.insert(k.clone(), n);
                }
            }
        }
        rows.push(ScenarioRow { scenario, metrics });
    }
    Ok(LatencyDoc {
        bench,
        revision,
        rows,
    })
}

// ---------------------------------------------------------------------------
// Per-scenario thresholds.
// ---------------------------------------------------------------------------

/// Per-scenario noise thresholds, the parsed form of the committed
/// `thresholds.json`:
///
/// ```json
/// {
///   "default": 0.25,
///   "scenarios": {"soak/universal-counter-reject": 0.6},
///   "warn_only": ["soak/sharded-zipf-1m"]
/// }
/// ```
///
/// Every scenario gates at `scenarios[name]` when present, `default`
/// otherwise. Scenarios named in `warn_only` still report regressions but
/// never fail a strict run — the parking place for scenarios that are new
/// (no calibrated noise level yet) or structurally noisy.
#[derive(Clone, Debug, PartialEq)]
pub struct Thresholds {
    /// Fallback relative threshold for scenarios without an override.
    pub default: f64,
    /// Per-scenario overrides, by scenario name.
    pub overrides: BTreeMap<String, f64>,
    /// Scenarios whose regressions warn but never gate.
    pub warn_only: Vec<String>,
}

impl Thresholds {
    /// A single threshold for every scenario, nothing warn-only — the
    /// shape the bare `--threshold` flag produces.
    pub fn uniform(threshold: f64) -> Thresholds {
        Thresholds {
            default: threshold,
            overrides: BTreeMap::new(),
            warn_only: Vec::new(),
        }
    }

    /// The threshold gating `scenario`.
    pub fn for_scenario(&self, scenario: &str) -> f64 {
        self.overrides
            .get(scenario)
            .copied()
            .unwrap_or(self.default)
    }

    /// Whether `scenario`'s regressions are warn-only.
    pub fn is_warn_only(&self, scenario: &str) -> bool {
        self.warn_only.iter().any(|s| s == scenario)
    }
}

/// Parses a `thresholds.json` document (see [`Thresholds`]). All three
/// fields are optional; `default` defaults to `0.25`.
///
/// # Errors
///
/// A human-readable message when the text is not well-formed JSON, the
/// top level is not an object, or a field has the wrong shape.
pub fn parse_thresholds(text: &str) -> Result<Thresholds, String> {
    let mut p = Parser::new(text);
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    if !matches!(doc, Json::Obj(_)) {
        return Err("thresholds document must be an object".to_string());
    }
    let default = match doc.get("default") {
        None => 0.25,
        Some(v) => v.as_num().ok_or("\"default\" must be a number")?,
    };
    let mut overrides = BTreeMap::new();
    match doc.get("scenarios") {
        None => {}
        Some(Json::Obj(fields)) => {
            for (name, v) in fields {
                let t = v
                    .as_num()
                    .ok_or_else(|| format!("scenarios[\"{name}\"] must be a number"))?;
                overrides.insert(name.clone(), t);
            }
        }
        Some(_) => return Err("\"scenarios\" must be an object".to_string()),
    }
    let mut warn_only = Vec::new();
    match doc.get("warn_only") {
        None => {}
        Some(Json::Arr(items)) => {
            for (i, v) in items.iter().enumerate() {
                warn_only.push(
                    v.as_str()
                        .ok_or_else(|| format!("warn_only[{i}] must be a string"))?
                        .to_string(),
                );
            }
        }
        Some(_) => return Err("\"warn_only\" must be an array".to_string()),
    }
    for t in overrides.values().copied().chain([default]) {
        if !(t >= 0.0 && t.is_finite()) {
            return Err("thresholds must be finite non-negative fractions".to_string());
        }
    }
    Ok(Thresholds {
        default,
        overrides,
        warn_only,
    })
}

// ---------------------------------------------------------------------------
// Delta computation.
// ---------------------------------------------------------------------------

/// Which direction of change counts against the new revision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Worse {
    /// Larger is worse (latency quantiles).
    Higher,
    /// Smaller is worse (throughput).
    Lower,
}

/// The metrics the gate compares, with their worse-direction. Latency
/// medians and tails regress upward; throughput regresses downward.
pub const GATED_METRICS: [(&str, Worse); 3] = [
    ("p50_ns", Worse::Higher),
    ("p99_ns", Worse::Higher),
    ("ops_per_sec", Worse::Lower),
];

/// One metric's movement between the two revisions.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Field name (one of [`GATED_METRICS`]).
    pub metric: &'static str,
    /// Baseline value.
    pub base: f64,
    /// New value.
    pub new: f64,
    /// Signed relative change `(new - base) / base`; 0 when the baseline
    /// is 0 and the new value is too, `inf`-clamped otherwise.
    pub rel: f64,
    /// Whether the change moves in the worse direction by more than the
    /// report's threshold.
    pub regressed: bool,
}

/// One scenario's comparison across the gated metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioDelta {
    /// The scenario name.
    pub scenario: String,
    /// The relative threshold this scenario's metrics were gated at.
    pub threshold: f64,
    /// Whether this scenario's regressions warn without gating a strict
    /// run ([`Thresholds::warn_only`]).
    pub warn_only: bool,
    /// Per-metric movement, in [`GATED_METRICS`] order (metrics absent
    /// from either side are skipped, tolerating older baselines).
    pub metrics: Vec<MetricDelta>,
}

/// The full cross-revision comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaReport {
    /// Baseline revision key.
    pub base_revision: String,
    /// New revision key.
    pub new_revision: String,
    /// The default relative noise threshold a worse-direction move must
    /// exceed to count as a regression (e.g. `0.25` = 25%); individual
    /// scenarios may carry overrides (see [`ScenarioDelta::threshold`]).
    pub threshold: f64,
    /// Scenarios present in both documents, in the new document's order.
    pub scenarios: Vec<ScenarioDelta>,
    /// Scenarios only in the new document (no baseline — informational).
    pub added: Vec<String>,
    /// Scenarios only in the baseline (dropped — informational).
    pub removed: Vec<String>,
}

impl DeltaReport {
    /// Every metric delta that crossed the threshold in the worse
    /// direction, as `(scenario, delta)` pairs.
    pub fn regressions(&self) -> Vec<(&str, &MetricDelta)> {
        self.scenarios
            .iter()
            .flat_map(|s| {
                s.metrics
                    .iter()
                    .filter(|m| m.regressed)
                    .map(move |m| (s.scenario.as_str(), m))
            })
            .collect()
    }

    /// Whether any gated metric regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.scenarios
            .iter()
            .any(|s| s.metrics.iter().any(|m| m.regressed))
    }

    /// The regressions that gate a strict run: [`regressions`]
    /// (DeltaReport::regressions) minus the warn-only scenarios.
    pub fn gating_regressions(&self) -> Vec<(&str, &MetricDelta)> {
        self.scenarios
            .iter()
            .filter(|s| !s.warn_only)
            .flat_map(|s| {
                s.metrics
                    .iter()
                    .filter(|m| m.regressed)
                    .map(move |m| (s.scenario.as_str(), m))
            })
            .collect()
    }

    /// Whether a regression outside the warn-only set exists — the
    /// `--strict` failure condition.
    pub fn has_gating_regressions(&self) -> bool {
        self.scenarios
            .iter()
            .any(|s| !s.warn_only && s.metrics.iter().any(|m| m.regressed))
    }
}

fn signed_rel(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - base) / base
    }
}

/// Compares a freshly measured latency document against a baseline with a
/// single uniform threshold; see [`delta_with`] for the per-scenario form.
pub fn delta(base: &LatencyDoc, new: &LatencyDoc, threshold: f64) -> DeltaReport {
    delta_with(base, new, &Thresholds::uniform(threshold))
}

/// Compares a freshly measured latency document against a baseline.
///
/// For each scenario present in both documents, each of [`GATED_METRICS`]
/// is compared; a move in the metric's worse direction whose magnitude
/// exceeds the scenario's threshold ([`Thresholds::for_scenario`],
/// relative to the baseline) is flagged as a regression. Moves in the
/// better direction, and moves within the noise threshold, never flag.
/// Scenarios in the warn-only set still flag, but are excluded from
/// [`DeltaReport::gating_regressions`].
pub fn delta_with(base: &LatencyDoc, new: &LatencyDoc, thresholds: &Thresholds) -> DeltaReport {
    let mut scenarios = Vec::new();
    let mut added = Vec::new();
    for row in &new.rows {
        let Some(base_row) = base.row(&row.scenario) else {
            added.push(row.scenario.clone());
            continue;
        };
        let threshold = thresholds.for_scenario(&row.scenario);
        let mut metrics = Vec::new();
        for (name, worse) in GATED_METRICS {
            let (Some(b), Some(n)) = (base_row.metric(name), row.metric(name)) else {
                continue;
            };
            let rel = signed_rel(b, n);
            let worse_move = match worse {
                Worse::Higher => rel,
                Worse::Lower => -rel,
            };
            metrics.push(MetricDelta {
                metric: name,
                base: b,
                new: n,
                rel,
                regressed: worse_move > threshold,
            });
        }
        scenarios.push(ScenarioDelta {
            scenario: row.scenario.clone(),
            threshold,
            warn_only: thresholds.is_warn_only(&row.scenario),
            metrics,
        });
    }
    let removed = base
        .rows
        .iter()
        .filter(|r| new.row(&r.scenario).is_none())
        .map(|r| r.scenario.clone())
        .collect();
    DeltaReport {
        base_revision: base.revision.clone(),
        new_revision: new.revision.clone(),
        threshold: thresholds.default,
        scenarios,
        added,
        removed,
    }
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

fn fmt_value(v: f64) -> String {
    format!("{v:.0}")
}

fn fmt_rel(rel: f64) -> String {
    if rel.is_infinite() {
        "+inf".to_string()
    } else {
        format!("{:+.1}%", rel * 100.0)
    }
}

/// Renders the report as a fixed-width text table: one line per
/// scenario-metric pair, regressions marked `REGRESSED`, improvements and
/// in-noise moves marked `ok`, plus added/removed scenario notes and a
/// one-line verdict footer.
pub fn render_table(report: &DeltaReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service latency delta: {} -> {} (noise threshold {:.0}%)",
        report.base_revision,
        report.new_revision,
        report.threshold * 100.0
    );
    let _ = writeln!(
        out,
        "{:<34} {:<14} {:>14} {:>14} {:>9}  verdict",
        "scenario", "metric", "base", "new", "delta"
    );
    let width = 34 + 1 + 14 + 1 + 14 + 1 + 14 + 1 + 9 + 2 + 9;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for s in &report.scenarios {
        for m in &s.metrics {
            let _ = writeln!(
                out,
                "{:<34} {:<14} {:>14} {:>14} {:>9}  {}",
                s.scenario,
                m.metric,
                fmt_value(m.base),
                fmt_value(m.new),
                fmt_rel(m.rel),
                match (m.regressed, s.warn_only) {
                    (true, true) => "REGRESSED (warn-only)",
                    (true, false) => "REGRESSED",
                    (false, _) => "ok",
                }
            );
        }
    }
    for name in &report.added {
        let _ = writeln!(out, "{name:<34} (added: no baseline to compare)");
    }
    for name in &report.removed {
        let _ = writeln!(out, "{name:<34} (removed: present only in baseline)");
    }
    let regs = report.regressions();
    if regs.is_empty() {
        let _ = writeln!(out, "verdict: no regressions beyond the noise threshold");
    } else {
        let gating = report.gating_regressions().len();
        let _ = writeln!(
            out,
            "verdict: {} metric(s) regressed beyond the noise threshold \
             ({gating} gating, {} warn-only)",
            regs.len(),
            regs.len() - gating
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::json::{render_latency, LatencyRecord};
    use std::time::Duration;

    fn sample_record(scenario: &str, scale: u64) -> LatencyRecord {
        let mut h = Histogram::new();
        for v in [100, 200, 400, 900, 5_000] {
            h.record(v * scale);
        }
        LatencyRecord {
            scenario: scenario.to_string(),
            ops: 5_000,
            rejected: 0,
            audits: 3,
            online_probes: 12,
            online_probes_passed: 12,
            elapsed: Duration::from_millis(20 * scale as u32 as u64),
            audit_pause: Duration::from_millis(2),
            resizes: scale,
            resize_pause: Duration::from_micros(100 * scale),
            latency: h.summary(),
            queue_wait: h.summary(),
            service: h.summary(),
        }
    }

    #[test]
    fn roundtrip_parses_rendered_document() {
        let doc_text = render_latency(
            "service_latency",
            &[sample_record("soak/a", 1), sample_record("soak/b", 2)],
        );
        let doc = parse_latency_doc(&doc_text).unwrap();
        assert_eq!(doc.bench, "service_latency");
        assert!(!doc.revision.is_empty());
        assert_eq!(doc.rows.len(), 2);
        let a = doc.row("soak/a").unwrap();
        for field in [
            "ops",
            "p50_ns",
            "p99_ns",
            "ops_per_sec",
            "ops_per_sec_load",
            "queue_wait_p99_ns",
            "service_p99_ns",
            "online_probes",
            "audit_pause_ns",
        ] {
            assert!(a.metric(field).is_some(), "missing {field}");
        }
        assert!((a.metric("ops").unwrap() - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn self_delta_has_no_regressions() {
        let text = render_latency("service_latency", &[sample_record("soak/a", 1)]);
        let doc = parse_latency_doc(&text).unwrap();
        let report = delta(&doc, &doc, 0.25);
        assert!(!report.has_regressions());
        assert!(report.added.is_empty() && report.removed.is_empty());
        assert_eq!(report.scenarios.len(), 1);
        assert_eq!(report.scenarios[0].metrics.len(), GATED_METRICS.len());
        assert!(report.scenarios[0].metrics.iter().all(|m| m.rel == 0.0));
    }

    #[test]
    fn latency_increase_beyond_threshold_regresses() {
        let base = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 1)],
        ))
        .unwrap();
        let new = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 4)],
        ))
        .unwrap();
        let report = delta(&base, &new, 0.25);
        let regs = report.regressions();
        assert!(
            regs.iter()
                .any(|(s, m)| *s == "soak/a" && m.metric == "p99_ns"),
            "4x latency must flag p99: {regs:?}"
        );
        // The reverse direction is an improvement, never a regression on
        // the latency metrics — but 4x slower elapsed means throughput
        // regressed in `report`, and throughput *improved* here.
        let back = delta(&new, &base, 0.25);
        assert!(back
            .regressions()
            .iter()
            .all(|(_, m)| m.metric != "p50_ns" && m.metric != "p99_ns"));
    }

    #[test]
    fn throughput_drop_regresses_and_rise_does_not() {
        let mk = |ops_ns: u64| {
            parse_latency_doc(&render_latency(
                "service_latency",
                &[{
                    let mut r = sample_record("soak/a", 1);
                    r.elapsed = Duration::from_nanos(ops_ns);
                    r
                }],
            ))
            .unwrap()
        };
        let fast = mk(10_000_000);
        let slow = mk(40_000_000);
        let report = delta(&fast, &slow, 0.25);
        assert!(report
            .regressions()
            .iter()
            .any(|(_, m)| m.metric == "ops_per_sec"));
        let report = delta(&slow, &fast, 0.25);
        assert!(report
            .regressions()
            .iter()
            .all(|(_, m)| m.metric != "ops_per_sec"));
    }

    #[test]
    fn within_noise_moves_do_not_flag() {
        let base = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 10)],
        ))
        .unwrap();
        let mut new = base.clone();
        for m in new.rows[0].metrics.values_mut() {
            *m *= 1.05; // 5% across the board, threshold 25%
        }
        assert!(!delta(&base, &new, 0.25).has_regressions());
    }

    #[test]
    fn added_and_removed_scenarios_are_informational() {
        let base = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/old", 1)],
        ))
        .unwrap();
        let new = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/new", 1)],
        ))
        .unwrap();
        let report = delta(&base, &new, 0.25);
        assert_eq!(report.added, vec!["soak/new"]);
        assert_eq!(report.removed, vec!["soak/old"]);
        assert!(!report.has_regressions());
        let table = render_table(&report);
        assert!(table.contains("added"), "{table}");
        assert!(table.contains("removed"), "{table}");
    }

    #[test]
    fn render_table_marks_regressions() {
        let base = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 1)],
        ))
        .unwrap();
        let new = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 4)],
        ))
        .unwrap();
        let table = render_table(&delta(&base, &new, 0.25));
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("soak/a"), "{table}");
        assert!(table.contains("p99_ns"), "{table}");
        assert!(table.contains("verdict:"), "{table}");
    }

    #[test]
    fn per_scenario_thresholds_gate_independently() {
        let base = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 1), sample_record("soak/b", 1)],
        ))
        .unwrap();
        let new = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 2), sample_record("soak/b", 2)],
        ))
        .unwrap();
        // 2x latency: flags at the 25% default, absorbed by a 3x override.
        let mut thresholds = Thresholds::uniform(0.25);
        thresholds.overrides.insert("soak/b".to_string(), 2.0);
        let report = delta_with(&base, &new, &thresholds);
        let regs = report.regressions();
        assert!(regs.iter().any(|(s, _)| *s == "soak/a"));
        assert!(
            regs.iter()
                .all(|(s, m)| *s != "soak/b" || m.metric == "ops_per_sec"),
            "3x latency headroom must absorb soak/b's 2x: {regs:?}"
        );
        assert_eq!(report.scenarios[0].threshold, 0.25);
        assert_eq!(report.scenarios[1].threshold, 2.0);
    }

    #[test]
    fn warn_only_scenarios_report_but_do_not_gate() {
        let base = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 1), sample_record("soak/b", 1)],
        ))
        .unwrap();
        let new = parse_latency_doc(&render_latency(
            "service_latency",
            &[sample_record("soak/a", 1), sample_record("soak/b", 4)],
        ))
        .unwrap();
        let mut thresholds = Thresholds::uniform(0.25);
        thresholds.warn_only.push("soak/b".to_string());
        let report = delta_with(&base, &new, &thresholds);
        assert!(report.has_regressions(), "warn-only still reports");
        assert!(!report.has_gating_regressions(), "but never gates");
        assert!(report.gating_regressions().is_empty());
        let table = render_table(&report);
        assert!(table.contains("REGRESSED (warn-only)"), "{table}");
        assert!(table.contains("0 gating"), "{table}");
    }

    #[test]
    fn thresholds_parse_and_reject() {
        let t = parse_thresholds(
            "{\"default\": 0.3, \
             \"scenarios\": {\"soak/a\": 0.5}, \
             \"warn_only\": [\"soak/new\"]}",
        )
        .unwrap();
        assert_eq!(t.for_scenario("soak/a"), 0.5);
        assert_eq!(t.for_scenario("soak/other"), 0.3);
        assert!(t.is_warn_only("soak/new"));
        assert!(!t.is_warn_only("soak/a"));
        // Empty object: all defaults.
        assert_eq!(parse_thresholds("{}").unwrap(), Thresholds::uniform(0.25));
        assert!(parse_thresholds("[]").is_err());
        assert!(parse_thresholds("{\"default\": \"x\"}").is_err());
        assert!(parse_thresholds("{\"scenarios\": [1]}").is_err());
        assert!(parse_thresholds("{\"warn_only\": [1]}").is_err());
        assert!(parse_thresholds("{\"default\": -0.5}").is_err());
        assert!(parse_thresholds("{} extra").is_err());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_latency_doc("").is_err());
        assert!(parse_latency_doc("{\"bench\": \"x\"}").is_err());
        assert!(parse_latency_doc("{\"bench\": 3, \"revision\": \"r\", \"results\": []}").is_err());
        assert!(parse_latency_doc("[1, 2").is_err());
        assert!(parse_latency_doc("{} trailing").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_latency_doc(
            "{\"bench\": \"a\\\"b\", \"revision\": \"r\\u0041\", \
             \"results\": [{\"scenario\": \"s\", \"x\": 1.5e3, \"nested\": {\"y\": [1, null, true]}}]}",
        )
        .unwrap();
        assert_eq!(doc.bench, "a\"b");
        assert_eq!(doc.revision, "rA");
        assert_eq!(doc.rows[0].metric("x"), Some(1500.0));
        assert_eq!(doc.rows[0].metric("nested"), None, "non-numeric skipped");
    }
}
