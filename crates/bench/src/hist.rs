//! A fixed-bucket log-scale histogram for latency observability: constant
//! memory, constant-time recording, lossless merge, and quantile
//! extraction with a bounded relative error.
//!
//! The bucketing is the classic "floating point" scheme (HdrHistogram's
//! coarse cousin): [`SUB_BITS`] sub-buckets per power of two, so every
//! bucket spans at most a `1 + 2^-SUB_BITS` ratio and any reported
//! quantile is within 12.5% of the true value — plenty for p50/p99/p999
//! tail tracking, with the whole `u64` range covered by
//! [`NUM_BUCKETS`] counters and no allocation after construction.
//!
//! The service harness records one value per completed operation
//! (nanoseconds from ingress-queue submission to response) into a
//! per-worker histogram and merges them at drain barriers; merge is
//! counter addition, so `merge(h(a), h(b)) == h(a ++ b)` exactly.

/// Sub-bucket resolution: `2^SUB_BITS` buckets per octave, bounding the
/// relative quantile error at `2^-SUB_BITS` = 12.5%.
const SUB_BITS: u32 = 3;

/// Buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`: values below `2 * SUB` map to
/// themselves (exact), every further octave contributes `SUB` buckets.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// The bucket index of `v`.
fn bucket_of(v: u64) -> usize {
    let h = 64 - v.leading_zeros(); // bit length of v
    let s = h.saturating_sub(SUB_BITS + 1);
    (s as usize * SUB) + (v >> s) as usize
}

/// The inclusive upper bound of bucket `i` — the value a quantile falling
/// in the bucket reports (conservative: never under-reports a latency).
fn bucket_high(i: usize) -> u64 {
    if i < 2 * SUB {
        return i as u64;
    }
    let s = (i / SUB - 1) as u32;
    let rem = (i - s as usize * SUB) as u128; // in [SUB, 2*SUB)
                                              // u128: the top bucket's bound is exactly 2^64 - 1.
    (((rem + 1) << s) - 1) as u64
}

/// A mergeable log-scale histogram of `u64` samples (typically latency in
/// nanoseconds).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Adds every sample of `other` into `self`. Exact: recording two
    /// streams into one histogram and merging two per-stream histograms
    /// produce identical counters.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the inclusive
    /// upper bound of the bucket holding the `ceil(q * count)`-th smallest
    /// sample, clamped to the exact maximum. 0 if the histogram is empty.
    ///
    /// Monotone in `q` by construction, and within 12.5% above the true
    /// order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// The p50/p90/p99/p999 + max summary the service bench reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max,
            mean: self.mean(),
        }
    }
}

/// The quantile digest of one histogram, in the histogram's sample unit
/// (nanoseconds throughout the service harness).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LatencySummary {
    /// Samples digested.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::SplitMix64;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Exhaustive over the exact region and the first octave boundaries,
        // then spot checks across the range: bucket_of lands in range and
        // bucket_high bounds its own bucket.
        for v in 0..4096u64 {
            let b = bucket_of(v);
            assert!(b < NUM_BUCKETS);
            assert!(bucket_high(b) >= v, "v={v} above its bucket bound");
            assert!(
                v == 0 || bucket_of(v - 1) <= b,
                "bucketing not monotone at {v}"
            );
        }
        for shift in 0..64 {
            let v = 1u64 << shift;
            for v in [v, v + 1, v.wrapping_sub(1), u64::MAX >> (63 - shift)] {
                let b = bucket_of(v);
                assert!(b < NUM_BUCKETS, "v={v} maps past the table");
                assert!(bucket_high(b) >= v);
            }
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_region_is_exact_and_error_is_bounded() {
        for v in 0..(2 * SUB as u64) {
            assert_eq!(bucket_high(bucket_of(v)), v, "small values are exact");
        }
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = rng.next_u64() >> (rng.next_u64() % 60);
            let high = bucket_high(bucket_of(v));
            assert!(high >= v);
            assert!(
                (high - v) as f64 <= v as f64 / SUB as f64 + 1.0,
                "bucket bound {high} is more than 12.5% above {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed_by_max() {
        let mut rng = SplitMix64::new(0xbeef);
        for case in 0..50 {
            let mut h = Histogram::new();
            let n = 1 + (case * 97) % 2000;
            for _ in 0..n {
                h.record(rng.next_u64() >> (16 + rng.next_u64() % 40));
            }
            let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
                .iter()
                .map(|&q| h.quantile(q))
                .collect();
            for w in qs.windows(2) {
                assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
            }
            assert_eq!(h.quantile(1.0), h.max(), "q=1 is the exact max");
            assert!(h.summary().p999 <= h.max());
        }
    }

    #[test]
    fn quantile_tracks_the_true_order_statistic_within_bucket_error() {
        let mut rng = SplitMix64::new(3);
        let mut h = Histogram::new();
        let mut samples: Vec<u64> = (0..5000).map(|_| rng.next_u64() % 1_000_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for &q in &[0.5, 0.9, 0.99] {
            let true_v = samples[((q * samples.len() as f64).ceil() as usize - 1).min(4999)];
            let got = h.quantile(q);
            assert!(got >= true_v, "quantile must not under-report");
            assert!(
                got as f64 <= true_v as f64 * 1.130 + 1.0,
                "q={q}: reported {got} vs true {true_v} exceeds the 12.5% bound"
            );
        }
    }

    #[test]
    fn merge_equals_concat() {
        let mut rng = SplitMix64::new(17);
        let all: Vec<u64> = (0..4000).map(|_| rng.next_u64() % 10_000_000).collect();
        let (a, b) = all.split_at(1500);
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in a {
            ha.record(v);
        }
        for &v in b {
            hb.record(v);
        }
        for &v in &all {
            hc.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha, hc, "merge must equal recording the concatenation");
        // Merging an empty histogram is the identity.
        let before = hc.clone();
        hc.merge(&Histogram::new());
        assert_eq!(hc, before);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
