//! Machine-readable benchmark summaries: `BENCH_<name>.json` files at the
//! workspace root, seeding the perf trajectory without depending on the
//! (vendored, stats-free) criterion stand-in.
//!
//! The format is deliberately tiny — one object per benchmark run, a
//! `results` array of scenario measurements — so CI and later sessions can
//! diff throughput with `jq` and no extra tooling.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One measured scenario.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Scenario name (e.g. `"universal/counter-n3"`).
    pub scenario: String,
    /// Operations completed in the measured run.
    pub ops: usize,
    /// Wall-clock time of the measured run.
    pub elapsed: Duration,
}

impl BenchRecord {
    /// Throughput in operations per second. A zero elapsed time (possible
    /// only for degenerate runs) is clamped to 1ns to keep the value finite.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.max(Duration::from_nanos(1)).as_secs_f64()
    }
}

/// Escapes a string for JSON embedding.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The git revision of the working tree (short hash, `-dirty` suffixed when
/// the tree has uncommitted changes), or `"unknown"` outside a repository.
/// Recorded in every summary so `BENCH_*.json` files can be compared across
/// PRs — the perf trajectory.
///
/// Note the committed snapshot at the workspace root is necessarily stamped
/// `<parent>-dirty`: it is regenerated *before* the commit that ships it
/// exists, so its revision names the commit it was built on top of. The CI
/// artifact, regenerated from a clean checkout, carries the exact stamp.
pub fn git_revision() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    let Some(rev) = rev else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// Renders the summary document.
pub fn render(bench: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
    out.push_str(&format!(
        "  \"revision\": \"{}\",\n",
        escape(&git_revision())
    ));
    out.push_str(&format!("  \"scenarios\": {},\n", records.len()));
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            escape(&r.scenario),
            r.ops,
            r.elapsed.as_nanos(),
            r.ops_per_sec(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One soak scenario's latency digest: what one row of
/// `BENCH_service_latency.json` records.
#[derive(Clone, Debug)]
pub struct LatencyRecord {
    /// Soak scenario name (e.g. `"soak/hashtable-zipf"`).
    pub scenario: String,
    /// Operations applied in the measured soak.
    pub ops: usize,
    /// Operations rejected by backpressure (0 under the blocking policy).
    pub rejected: usize,
    /// State-quiescent HI audits that passed during the soak (mid-soak
    /// drain barriers plus the final one).
    pub audits: usize,
    /// Online (non-barrier) HI probe samples taken mid-flight — nonzero
    /// only for Perfect-HI backends, which permit observation at any
    /// configuration.
    pub online_probes: usize,
    /// How many of the online samples found canonical memory (== taken in
    /// a passing run).
    pub online_probes_passed: usize,
    /// Wall-clock time of the soak.
    pub elapsed: Duration,
    /// Time spent inside drain-barrier audit pauses, out of `elapsed`.
    pub audit_pause: Duration,
    /// Online capacity migrations the backend performed during the soak
    /// (zero for backends without maintenance).
    pub resizes: u64,
    /// Wall time operations spent inside those migrations — the resize
    /// pauses a scale-out backend's tail latency is paying for.
    pub resize_pause: Duration,
    /// The end-to-end latency digest (submission to response,
    /// nanoseconds), from [`crate::hist::Histogram::summary`].
    pub latency: crate::hist::LatencySummary,
    /// The ingress-to-dequeue queue-wait digest (span tracing).
    pub queue_wait: crate::hist::LatencySummary,
    /// The dequeue-to-completion service-time digest (span tracing).
    pub service: crate::hist::LatencySummary,
}

impl LatencyRecord {
    /// Gross throughput in operations per second (elapsed clamped to 1ns,
    /// audit pauses included).
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.max(Duration::from_nanos(1)).as_secs_f64()
    }

    /// Audit-excluded throughput: ops per second of load time only, so the
    /// drain-barrier cost is the visible gap to
    /// [`ops_per_sec`](LatencyRecord::ops_per_sec).
    pub fn ops_per_sec_load(&self) -> f64 {
        let load = self
            .elapsed
            .saturating_sub(self.audit_pause)
            .max(Duration::from_nanos(1));
        self.ops as f64 / load.as_secs_f64()
    }
}

/// Renders the latency summary document (revision-keyed like [`render`],
/// latencies in nanoseconds). Each result row carries the end-to-end
/// quantiles plus the `queue_wait_*`/`service_*` span attribution and the
/// online-audit counts — the fields `crate::delta` diffs across revisions.
pub fn render_latency(bench: &str, records: &[LatencyRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
    out.push_str(&format!(
        "  \"revision\": \"{}\",\n",
        escape(&git_revision())
    ));
    out.push_str(&format!("  \"scenarios\": {},\n", records.len()));
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let l = &r.latency;
        let (q, s) = (&r.queue_wait, &r.service);
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"ops\": {}, \"rejected\": {}, \"audits\": {}, \
             \"online_probes\": {}, \"online_probes_passed\": {}, \
             \"elapsed_ns\": {}, \"audit_pause_ns\": {}, \
             \"resizes\": {}, \"resize_pause_ns\": {}, \
             \"ops_per_sec\": {:.1}, \"ops_per_sec_load\": {:.1}, \
             \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"max_ns\": {}, \
             \"queue_wait_p50_ns\": {}, \"queue_wait_p99_ns\": {}, \"queue_wait_p999_ns\": {}, \
             \"service_p50_ns\": {}, \"service_p99_ns\": {}, \"service_p999_ns\": {}}}{}\n",
            escape(&r.scenario),
            r.ops,
            r.rejected,
            r.audits,
            r.online_probes,
            r.online_probes_passed,
            r.elapsed.as_nanos(),
            r.audit_pause.as_nanos(),
            r.resizes,
            r.resize_pause.as_nanos(),
            r.ops_per_sec(),
            r.ops_per_sec_load(),
            l.mean,
            l.p50,
            l.p90,
            l.p99,
            l.p999,
            l.max,
            q.p50,
            q.p99,
            q.p999,
            s.p50,
            s.p99,
            s.p999,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<name>.json` (latency form) at the workspace root and
/// returns its path.
///
/// # Errors
///
/// Any I/O error from creating or writing the file.
pub fn write_latency_summary(bench: &str, records: &[LatencyRecord]) -> std::io::Result<PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(render_latency(bench, records).as_bytes())?;
    Ok(path)
}

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

/// Writes `BENCH_<name>.json` at the workspace root and returns its path.
///
/// # Errors
///
/// Any I/O error from creating or writing the file.
pub fn write_summary(bench: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    let path = workspace_root().join(format!("BENCH_{bench}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(render(bench, records).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_shape() {
        let records = vec![
            BenchRecord {
                scenario: "a/b".into(),
                ops: 100,
                elapsed: Duration::from_millis(5),
            },
            BenchRecord {
                scenario: "c\"d".into(),
                ops: 2,
                elapsed: Duration::from_nanos(10),
            },
        ];
        let doc = render("smoke", &records);
        assert!(doc.contains("\"bench\": \"smoke\""));
        assert!(
            doc.contains("\"revision\": \""),
            "perf trajectory is keyed by revision"
        );
        assert!(doc.contains("\"scenarios\": 2"));
        assert!(doc.contains("\"scenario\": \"a/b\""));
        assert!(doc.contains("c\\\"d"), "quotes are escaped");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn render_latency_is_valid_shape() {
        let mut h = crate::hist::Histogram::new();
        for v in [120u64, 450, 900, 12_000, 250_000] {
            h.record(v);
        }
        let records = vec![LatencyRecord {
            scenario: "soak/x".into(),
            ops: 5,
            rejected: 1,
            audits: 4,
            online_probes: 9,
            online_probes_passed: 9,
            elapsed: Duration::from_millis(3),
            audit_pause: Duration::from_millis(1),
            resizes: 6,
            resize_pause: Duration::from_micros(250),
            latency: h.summary(),
            queue_wait: h.summary(),
            service: h.summary(),
        }];
        let doc = render_latency("service_latency", &records);
        assert!(doc.contains("\"bench\": \"service_latency\""));
        assert!(doc.contains("\"revision\": \""), "keyed by git revision");
        assert!(doc.contains("\"unit\": \"ns\""));
        for field in [
            "p50_ns",
            "p90_ns",
            "p99_ns",
            "p999_ns",
            "max_ns",
            "audits",
            "online_probes",
            "online_probes_passed",
            "audit_pause_ns",
            "resizes",
            "resize_pause_ns",
            "ops_per_sec_load",
            "queue_wait_p50_ns",
            "queue_wait_p99_ns",
            "queue_wait_p999_ns",
            "service_p50_ns",
            "service_p99_ns",
            "service_p999_ns",
        ] {
            assert!(
                doc.contains(&format!("\"{field}\"")),
                "missing {field}: {doc}"
            );
        }
        assert!(doc.contains("\"max_ns\": 250000"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn ops_per_sec_load_excludes_audit_pause() {
        let h = crate::hist::Histogram::new();
        let r = LatencyRecord {
            scenario: "soak/x".into(),
            ops: 1000,
            rejected: 0,
            audits: 1,
            online_probes: 0,
            online_probes_passed: 0,
            elapsed: Duration::from_secs(2),
            audit_pause: Duration::from_secs(1),
            resizes: 0,
            resize_pause: Duration::ZERO,
            latency: h.summary(),
            queue_wait: h.summary(),
            service: h.summary(),
        };
        assert!((r.ops_per_sec() - 500.0).abs() < 1e-6);
        assert!((r.ops_per_sec_load() - 1000.0).abs() < 1e-6);
        assert!(r.ops_per_sec_load() >= r.ops_per_sec());
    }

    #[test]
    fn git_revision_is_nonempty() {
        assert!(!git_revision().is_empty());
    }

    #[test]
    fn ops_per_sec_is_finite() {
        let r = BenchRecord {
            scenario: "x".into(),
            ops: 7,
            elapsed: Duration::ZERO,
        };
        assert!(r.ops_per_sec().is_finite());
    }
}
