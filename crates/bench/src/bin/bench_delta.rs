//! Cross-PR latency regression gate.
//!
//! ```text
//! bench_delta <base.json> <new.json> [--threshold <fraction>]
//!             [--thresholds <thresholds.json>] [--out <path>] [--strict]
//! ```
//!
//! Parses two `BENCH_service_latency.json` documents, diffs the gated
//! metrics per scenario ([`hi_bench::delta::GATED_METRICS`]), prints the
//! rendered table (optionally also to `--out`), and exits:
//!
//! * `0` — parsed fine; no gating regression: clean, warn-only-mode
//!   regressions (no `--strict`), or regressions confined to scenarios the
//!   thresholds file lists as warn-only (new/noisy — no calibrated noise
//!   level to gate at yet),
//! * `1` — usage or I/O or parse error,
//! * `2` — gating regressions under `--strict`.
//!
//! `--thresholds` points at a committed per-scenario noise calibration
//! ([`hi_bench::delta::Thresholds`]); without it every scenario gates at
//! the uniform `--threshold` fraction.

use hi_bench::delta::{delta_with, parse_thresholds, render_table, Thresholds};

struct Args {
    base: String,
    new: String,
    threshold: f64,
    thresholds: Option<String>,
    out: Option<String>,
    strict: bool,
}

const USAGE: &str = "usage: bench_delta <base.json> <new.json> [--threshold <fraction>] \
     [--thresholds <thresholds.json>] [--out <path>] [--strict]";

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut positional = Vec::new();
    let mut threshold = 0.25;
    let mut thresholds = None;
    let mut out = None;
    let mut strict = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = argv
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !(threshold >= 0.0 && threshold.is_finite()) {
                    return Err("--threshold must be a finite non-negative fraction".to_string());
                }
            }
            "--thresholds" => thresholds = Some(argv.next().ok_or("--thresholds needs a path")?),
            "--out" => out = Some(argv.next().ok_or("--out needs a path")?),
            "--strict" => strict = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            _ => positional.push(arg),
        }
    }
    let [base, new] = positional.try_into().map_err(|_| USAGE.to_string())?;
    Ok(Args {
        base,
        new,
        threshold,
        thresholds,
        out,
        strict,
    })
}

fn run(args: &Args) -> Result<bool, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let base = hi_bench::delta::parse_latency_doc(&read(&args.base)?)
        .map_err(|e| format!("{}: {e}", args.base))?;
    let new = hi_bench::delta::parse_latency_doc(&read(&args.new)?)
        .map_err(|e| format!("{}: {e}", args.new))?;
    let thresholds = match &args.thresholds {
        Some(path) => parse_thresholds(&read(path)?).map_err(|e| format!("{path}: {e}"))?,
        None => Thresholds::uniform(args.threshold),
    };
    let report = delta_with(&base, &new, &thresholds);
    let table = render_table(&report);
    print!("{table}");
    if let Some(path) = &args.out {
        std::fs::write(path, &table).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(report.has_gating_regressions())
}

fn main() {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    match run(&args) {
        Ok(regressed) => {
            if regressed && args.strict {
                std::process::exit(2);
            }
        }
        Err(msg) => {
            eprintln!("bench_delta: {msg}");
            std::process::exit(1);
        }
    }
}
