//! Cross-PR latency regression gate.
//!
//! ```text
//! bench_delta <base.json> <new.json> [--threshold <fraction>] [--out <path>] [--strict]
//! ```
//!
//! Parses two `BENCH_service_latency.json` documents, diffs the gated
//! metrics per scenario ([`hi_bench::delta::GATED_METRICS`]), prints the
//! rendered table (optionally also to `--out`), and exits:
//!
//! * `0` — parsed fine; no regression, or regressions in warn-only mode
//!   (the default — bench noise on shared CI runners shouldn't fail PRs),
//! * `1` — usage or I/O or parse error,
//! * `2` — regressions beyond the threshold under `--strict`.

use hi_bench::delta::{delta, render_table};

struct Args {
    base: String,
    new: String,
    threshold: f64,
    out: Option<String>,
    strict: bool,
}

const USAGE: &str =
    "usage: bench_delta <base.json> <new.json> [--threshold <fraction>] [--out <path>] [--strict]";

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut positional = Vec::new();
    let mut threshold = 0.25;
    let mut out = None;
    let mut strict = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = argv
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !(threshold >= 0.0 && threshold.is_finite()) {
                    return Err("--threshold must be a finite non-negative fraction".to_string());
                }
            }
            "--out" => out = Some(argv.next().ok_or("--out needs a path")?),
            "--strict" => strict = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            _ => positional.push(arg),
        }
    }
    let [base, new] = positional.try_into().map_err(|_| USAGE.to_string())?;
    Ok(Args {
        base,
        new,
        threshold,
        out,
        strict,
    })
}

fn run(args: &Args) -> Result<bool, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let base = hi_bench::delta::parse_latency_doc(&read(&args.base)?)
        .map_err(|e| format!("{}: {e}", args.base))?;
    let new = hi_bench::delta::parse_latency_doc(&read(&args.new)?)
        .map_err(|e| format!("{}: {e}", args.new))?;
    let report = delta(&base, &new, args.threshold);
    let table = render_table(&report);
    print!("{table}");
    if let Some(path) = &args.out {
        std::fs::write(path, &table).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(report.has_regressions())
}

fn main() {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    match run(&args) {
        Ok(regressed) => {
            if regressed && args.strict {
                std::process::exit(2);
            }
        }
        Err(msg) => {
            eprintln!("bench_delta: {msg}");
            std::process::exit(1);
        }
    }
}
