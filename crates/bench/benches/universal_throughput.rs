//! The universal construction: cost of wait-freedom + HI (§6).
//!
//! Shape to reproduce: the single-cell CAS baseline is cheapest (no
//! announce/helping); Algorithm 5 pays a constant factor for the three-stage
//! protocol and its clearing; the leaky variant sits between (helping-free
//! but with an extra ledger write). Under multi-thread contention Algorithm
//! 5's throughput degrades gracefully (helping), while the CAS loop's
//! retries burn cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hi_api::{ConcurrentObject, ObjectHandle, UniversalObject};
use hi_bench::run_to_completion;
use hi_core::objects::{CounterOp, CounterSpec};
use hi_sim::{RoundRobin, Workload};
use hi_universal::{CasUniversal, LeakyUniversal, SimUniversal};

fn counter_workload(n: usize, ops: usize) -> Workload<CounterSpec> {
    let mut w = Workload::new(n);
    for pid in 0..n {
        for i in 0..ops {
            w.push(
                pid,
                if i % 2 == 0 {
                    CounterOp::Inc
                } else {
                    CounterOp::Dec
                },
            );
        }
    }
    w
}

fn spec() -> CounterSpec {
    CounterSpec::new(-64, 64, 0)
}

fn bench_sim_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal_sim_steps");
    for n in [2usize, 4, 8] {
        let ops = 16;
        group.throughput(Throughput::Elements((n * ops) as u64));
        group.bench_with_input(BenchmarkId::new("algorithm5", n), &n, |b, &n| {
            let imp = SimUniversal::new(spec(), n);
            b.iter(|| {
                run_to_completion(
                    &imp,
                    counter_workload(n, ops),
                    &mut RoundRobin::new(),
                    1 << 22,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("cas_baseline", n), &n, |b, &n| {
            let imp = CasUniversal::new(spec(), n);
            b.iter(|| {
                run_to_completion(
                    &imp,
                    counter_workload(n, ops),
                    &mut RoundRobin::new(),
                    1 << 22,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("leaky", n), &n, |b, &n| {
            let imp = LeakyUniversal::new(spec(), n);
            b.iter(|| {
                run_to_completion(
                    &imp,
                    counter_workload(n, ops),
                    &mut RoundRobin::new(),
                    1 << 22,
                )
            })
        });
        // Ablation: Algorithm 5 without the RL clearing lines — measures the
        // price of the §6.1 context hygiene (it should be small; the point
        // of the paper's design is that HI costs little here).
        group.bench_with_input(BenchmarkId::new("algorithm5_no_release", n), &n, |b, &n| {
            let imp = SimUniversal::without_release(spec(), n);
            b.iter(|| {
                run_to_completion(
                    &imp,
                    counter_workload(n, ops),
                    &mut RoundRobin::new(),
                    1 << 22,
                )
            })
        });
    }
    group.finish();
}

fn bench_threaded_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal_threaded");
    group.sample_size(15);
    for n in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(2_000));
        group.bench_with_input(BenchmarkId::new("algorithm5_threads", n), &n, |b, &n| {
            b.iter(|| {
                // Through the unified facade: uniform handle fan-out.
                let mut u = UniversalObject::new(CounterSpec::new(-2_000, 2_000, 0), n);
                let handles = u.handles();
                std::thread::scope(|s| {
                    for mut h in handles {
                        s.spawn(move || {
                            for i in 0..(2_000 / n) {
                                h.apply(if i % 2 == 0 {
                                    CounterOp::Inc
                                } else {
                                    CounterOp::Dec
                                });
                            }
                        });
                    }
                });
                u.abstract_state()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_universal, bench_threaded_universal);
criterion_main!(benches);
