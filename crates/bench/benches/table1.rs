//! Table 1: the cost of each feasible cell of the possibility matrix for
//! SWSR multi-valued registers from binary registers.
//!
//! | HI strength | wait-free | lock-free |
//! |---|---|---|
//! | perfect | impossible | impossible |
//! | state-quiescent | impossible | Algorithm 2 |
//! | quiescent | Algorithm 4 | Algorithm 2/4 |
//!
//! For the possible cells we measure solo and contended operation cost; the
//! impossible cells are covered by `adversary_growth` (starvation rounds)
//! and the `repro_table1` example (verdicts). The *shape* to reproduce:
//! Algorithm 4's writes cost a constant factor more than Algorithm 2's
//! (the B/flag helping protocol), and both scale linearly in K, while the
//! non-HI baseline (Algorithm 1) writes in O(v) only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hi_bench::run_to_completion;
use hi_core::objects::{MultiRegisterSpec, RegisterOp};
use hi_registers::{LockFreeHiRegister, VidyasankarRegister, WaitFreeHiRegister};
use hi_sim::{RoundRobin, Workload};

fn write_read_workload(k: u64, pairs: usize) -> Workload<MultiRegisterSpec> {
    let mut w = Workload::new(2);
    for i in 0..pairs {
        w.push(0, RegisterOp::Write((i as u64 % k) + 1));
        w.push(1, RegisterOp::Read);
    }
    w
}

fn bench_table1(c: &mut Criterion) {
    let k = 8;
    let pairs = 32;
    let mut group = c.benchmark_group("table1");
    group.bench_function(BenchmarkId::new("alg1_waitfree_not_hi", k), |b| {
        let imp = VidyasankarRegister::new(k, 1);
        b.iter(|| {
            run_to_completion(
                &imp,
                write_read_workload(k, pairs),
                &mut RoundRobin::new(),
                1 << 20,
            )
        })
    });
    group.bench_function(
        BenchmarkId::new("alg2_lockfree_state_quiescent_hi", k),
        |b| {
            let imp = LockFreeHiRegister::new(k, 1);
            b.iter(|| {
                run_to_completion(
                    &imp,
                    write_read_workload(k, pairs),
                    &mut RoundRobin::new(),
                    1 << 20,
                )
            })
        },
    );
    group.bench_function(BenchmarkId::new("alg4_waitfree_quiescent_hi", k), |b| {
        let imp = WaitFreeHiRegister::new(k, 1);
        b.iter(|| {
            run_to_completion(
                &imp,
                write_read_workload(k, pairs),
                &mut RoundRobin::new(),
                1 << 20,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
