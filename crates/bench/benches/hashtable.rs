//! The related-work comparison (paper reference [42]): cost of history
//! independence in a hash table.
//!
//! Shape to reproduce: the canonical Robin-Hood table's inserts cost a
//! small constant factor over first-fit tombstone probing (displacement
//! chains), and its deletes cost the backward shift; the concurrent insert
//! phase scales with threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hi_hashtable::{AtomicHashTable, HiHashTable, TombstoneHashTable};

const N_KEYS: u32 = 512;
const CAPACITY: usize = 1024;

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtable_sequential");
    group.throughput(Throughput::Elements(u64::from(N_KEYS)));
    group.bench_function("hi_insert_all", |b| {
        b.iter(|| {
            let mut t = HiHashTable::new(CAPACITY);
            for k in 1..=N_KEYS {
                t.insert(k.wrapping_mul(2654435761) % 100_000 + 1);
            }
            t.len()
        })
    });
    group.bench_function("tombstone_insert_all", |b| {
        b.iter(|| {
            let mut t = TombstoneHashTable::new(CAPACITY);
            for k in 1..=N_KEYS {
                t.insert(k.wrapping_mul(2654435761) % 100_000 + 1);
            }
            t.memory().len()
        })
    });
    group.bench_function("hi_insert_delete_churn", |b| {
        b.iter(|| {
            let mut t = HiHashTable::new(CAPACITY);
            for k in 1..=N_KEYS {
                let key = k.wrapping_mul(2654435761) % 100_000 + 1;
                t.insert(key);
                if k % 2 == 0 {
                    t.remove(key);
                }
            }
            t.len()
        })
    });
    group.finish();
}

fn bench_concurrent_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtable_insert_phase");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(u64::from(N_KEYS)));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let table = AtomicHashTable::new(CAPACITY);
                    let keys: Vec<u32> = (1..=N_KEYS)
                        .map(|k| k.wrapping_mul(2654435761) % 100_000 + 1)
                        .collect();
                    std::thread::scope(|s| {
                        for chunk in keys.chunks(keys.len().div_ceil(threads)) {
                            let table = &table;
                            s.spawn(move || {
                                for &k in chunk {
                                    table.insert(k);
                                }
                            });
                        }
                    });
                    table.capacity()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_concurrent_phase);
criterion_main!(benches);
