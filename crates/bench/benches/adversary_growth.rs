//! Theorems 17 and 20, quantitatively: the adversary extends starvation
//! executions at linear cost per round, without bound.
//!
//! Shape to reproduce: cost grows linearly in the round budget for the
//! starvable implementations (Algorithm 2, the positional queue) — there is
//! no knee where the reader escapes — while Algorithm 4 terminates the run
//! early at some small round count regardless of the budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hi_core::objects::{BoundedQueueSpec, MultiRegisterSpec};
use hi_lowerbound::{run_adversary, CtScript, QueuePeekScript};
use hi_queue::PositionalQueue;
use hi_registers::{LockFreeHiRegister, WaitFreeHiRegister};

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_growth");
    group.sample_size(10);
    for rounds in [10u64, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("alg2_register_k4", rounds),
            &rounds,
            |b, &rounds| {
                let imp = LockFreeHiRegister::new(4, 1);
                let script = CtScript::new(MultiRegisterSpec::new(4, 1));
                b.iter(|| run_adversary(&imp, &script, rounds, 10_000).unwrap().rounds)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("queue_peek_t3", rounds),
            &rounds,
            |b, &rounds| {
                let imp = PositionalQueue::new(3, 2);
                let script = QueuePeekScript::new(BoundedQueueSpec::new(3, 2));
                b.iter(|| run_adversary(&imp, &script, rounds, 10_000).unwrap().rounds)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("alg4_escapes", rounds),
            &rounds,
            |b, &rounds| {
                let imp = WaitFreeHiRegister::new(4, 1);
                let script = CtScript::new(MultiRegisterSpec::new(4, 1));
                b.iter(|| run_adversary(&imp, &script, rounds, 10_000).unwrap().rounds)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
