//! Threaded throughput of every backend behind the unified
//! `ConcurrentObject` facade, measured over the `hi_api::registry()`
//! scenarios and emitted as a machine-readable `BENCH_api_throughput.json`
//! at the workspace root (the perf-trajectory seed).
//!
//! This harness is deliberately criterion-free: the vendored criterion
//! stand-in collects no statistics, so the bench times the registry's pure
//! throughput runner (`Scenario::run_throughput` — no stamping, no history,
//! no checking) directly with `std::time::Instant`, takes the best of a few
//! rounds, and records ops/sec.
//!
//! ```sh
//! cargo bench --bench api_throughput
//! ```

use std::time::{Duration, Instant};

use hi_api::registry;
use hi_bench::json::{write_summary, BenchRecord};

const OPS_PER_HANDLE: usize = 20_000;
const WARMUP_ROUNDS: usize = 1;
const MEASURED_ROUNDS: usize = 3;
const SEED: u64 = 0xbe7c;

fn main() {
    let mut records = Vec::new();
    println!("{:32} {:>12} {:>14}", "scenario", "ops", "ops/sec");
    for scenario in registry() {
        for _ in 0..WARMUP_ROUNDS {
            scenario.run_throughput(OPS_PER_HANDLE / 10, SEED);
        }
        let mut best: Option<(usize, Duration)> = None;
        for round in 0..MEASURED_ROUNDS {
            let start = Instant::now();
            let ops = scenario.run_throughput(OPS_PER_HANDLE, SEED + round as u64);
            let elapsed = start.elapsed();
            if best.map_or(true, |(_, b)| elapsed < b) {
                best = Some((ops, elapsed));
            }
        }
        let (ops, elapsed) = best.expect("at least one measured round");
        let record = BenchRecord {
            scenario: scenario.name.to_string(),
            ops,
            elapsed,
        };
        println!(
            "{:32} {:>12} {:>14.0}",
            scenario.name,
            ops,
            record.ops_per_sec()
        );
        records.push(record);
    }
    match write_summary("api_throughput", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write JSON summary: {e}"),
    }
}
