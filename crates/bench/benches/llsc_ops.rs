//! Algorithm 6 primitive costs: LL / VL / SC / RL / Load / Store on the
//! packed `AtomicU64` R-LLSC, solo and under contention.
//!
//! Shape to reproduce: Load/VL/Store are single atomic ops; LL/SC/RL are a
//! read + CAS when uncontended; under contention LL/SC retry (lock-free, not
//! wait-free) — the reason Algorithm 5 layers helping on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hi_llsc::{LlscLayout, PackedRLlsc};

fn bench_solo_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("llsc_solo");
    let x = PackedRLlsc::new(LlscLayout::new(32, 8), 0);
    group.bench_function("load", |b| b.iter(|| x.load()));
    group.bench_function("vl", |b| b.iter(|| x.vl(0)));
    group.bench_function("store", |b| b.iter(|| x.store(7)));
    group.bench_function("ll_rl", |b| {
        b.iter(|| {
            x.ll(0);
            x.rl(0)
        })
    });
    group.bench_function("ll_sc", |b| {
        b.iter(|| {
            x.ll(0);
            x.sc(0, 9)
        })
    });
    group.finish();
}

fn bench_contended_sc(c: &mut Criterion) {
    let mut group = c.benchmark_group("llsc_contended");
    group.sample_size(15);
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("ll_sc_interference", threads),
            &threads,
            |b, &threads| {
                let x = PackedRLlsc::new(LlscLayout::new(32, 8), 0);
                let stop = std::sync::atomic::AtomicBool::new(false);
                std::thread::scope(|s| {
                    for pid in 1..threads {
                        let x = &x;
                        let stop = &stop;
                        s.spawn(move || {
                            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                                x.ll(pid);
                                x.sc(pid, pid as u64);
                            }
                        });
                    }
                    b.iter(|| {
                        x.ll(0);
                        x.sc(0, 42)
                    });
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solo_ops, bench_contended_sc);
criterion_main!(benches);
