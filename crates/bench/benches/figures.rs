//! Figures 1–5 as measurable harnesses.
//!
//! Figure 1 (observation models): cost of monitoring HI at perfect /
//! state-quiescent / quiescent points — the series shows how many points
//! each model admits per execution.
//! Figure 2 / 4 / 5 (Algorithm 4 scenarios): cost of a read forced through
//! the B fallback vs. one served from A.
//! Figure 3 (mode transitions): overhead of tracking Invariant 22 on a live
//! universal execution.
//!
//! The `repro_fig*` examples print the corresponding traces; these benches
//! regenerate the figures' quantitative side (who pays how much where).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hi_core::objects::{CounterOp, CounterSpec, MultiRegisterSpec, RegisterOp};
use hi_registers::WaitFreeHiRegister;
use hi_sim::Implementation;
use hi_sim::{run_workload, Executor, RoundRobin, Seeded, Workload};
use hi_spec::{single_mutator_state, HiMonitor, ObservationModel};
use hi_universal::{ModeTracker, SimUniversal};

fn register_workload(k: u64, pairs: usize) -> Workload<MultiRegisterSpec> {
    let mut w = Workload::new(2);
    for i in 0..pairs {
        w.push(0, RegisterOp::Write((i as u64 % k) + 1));
        w.push(1, RegisterOp::Read);
    }
    w
}

fn bench_fig1_observation_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_observation");
    let k = 6;
    for (name, model) in [
        ("perfect", ObservationModel::Perfect),
        ("state_quiescent", ObservationModel::StateQuiescent),
        ("quiescent", ObservationModel::Quiescent),
    ] {
        group.bench_function(BenchmarkId::new("monitor", name), |b| {
            let imp = WaitFreeHiRegister::new(k, 1);
            let spec = *imp.spec();
            b.iter(|| {
                let mut exec = Executor::new(imp.clone());
                let mut monitor = HiMonitor::new(model);
                let mut observer = |e: &Executor<MultiRegisterSpec, WaitFreeHiRegister>| {
                    if monitor.model().permits(e) {
                        let q = single_mutator_state(&spec, e.history());
                        monitor.observe(e, q);
                    }
                };
                run_workload(
                    &mut exec,
                    register_workload(k, 16),
                    &mut Seeded::new(7),
                    &mut observer,
                    1 << 20,
                )
                .unwrap();
                monitor.points()
            })
        });
    }
    group.finish();
}

fn bench_fig2_fig4_read_paths(c: &mut Criterion) {
    // A read served from A (solo) vs. a read pushed into the B fallback by
    // hostile writes (the Figure 4 / Lemma 10 scenario).
    let mut group = c.benchmark_group("fig2_fig4_read_paths");
    let k = 4;
    group.bench_function("read_from_a_solo", |b| {
        let imp = WaitFreeHiRegister::new(k, 2);
        b.iter(|| {
            let mut exec = Executor::new(imp.clone());
            exec.run_op_solo(hi_core::Pid(1), RegisterOp::Read, 1_000)
                .unwrap()
        })
    });
    group.bench_function("read_from_b_forced", |b| {
        let imp = WaitFreeHiRegister::new(k, 1);
        b.iter(|| {
            let mut exec = Executor::new(imp.clone());
            exec.invoke(hi_core::Pid(1), RegisterOp::Read);
            let mut next = k;
            let mut out = None;
            for _ in 0..10_000 {
                if let Some((_, resp)) = exec.step(hi_core::Pid(1)) {
                    out = Some(resp);
                    break;
                }
                exec.run_op_solo(hi_core::Pid(0), RegisterOp::Write(next), 1_000)
                    .unwrap();
                next = if next == 1 { k } else { 1 };
            }
            out.expect("Algorithm 4 reads are wait-free")
        })
    });
    group.finish();
}

fn bench_fig3_mode_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_mode_tracking");
    let n = 3;
    for (name, track) in [("untracked", false), ("tracked", true)] {
        group.bench_function(BenchmarkId::new("universal_run", name), |b| {
            let imp = SimUniversal::new(CounterSpec::new(-16, 16, 0), n);
            b.iter(|| {
                let mut exec = Executor::new(imp.clone());
                let mut w: Workload<CounterSpec> = Workload::new(n);
                for pid in 0..n {
                    for _ in 0..8 {
                        w.push(pid, CounterOp::Inc);
                    }
                }
                if track {
                    let init = imp.head_value(&exec.snapshot());
                    let mut tracker = ModeTracker::new((init.0 + 32) as u64, init.1.is_some());
                    let imp2 = imp.clone();
                    let mut observer = |e: &Executor<CounterSpec, SimUniversal<CounterSpec>>| {
                        let (q, r) = imp2.head_value(&e.snapshot());
                        tracker.observe((q + 32) as u64, r.is_some()).unwrap();
                    };
                    run_workload(&mut exec, w, &mut RoundRobin::new(), &mut observer, 1 << 22)
                        .unwrap();
                    tracker.linearized_ops()
                } else {
                    run_workload(&mut exec, w, &mut RoundRobin::new(), &mut (), 1 << 22).unwrap();
                    exec.steps()
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_observation_models,
    bench_fig2_fig4_read_paths,
    bench_fig3_mode_tracking
);
criterion_main!(benches);
