//! Ablation: the price of history independence in the register algorithms,
//! as a function of K — driven through the unified `ConcurrentObject`
//! facade (one bench body per algorithm family, not per bespoke API).
//!
//! Shape to reproduce: Algorithm 1's `Write(v)` costs `O(v)` primitives
//! (clear below only); Algorithms 2/4 cost `O(K)` (the upward clearing that
//! buys state-quiescent canonicity); Algorithm 4 adds a constant B/flag
//! overhead on top. Reads are `O(K)` for all three when uncontended.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hi_api::{ConcurrentObject, ObjectHandle};
use hi_api::{LockFreeHiObject, VidyasankarObject, WaitFreeHiObject};
use hi_core::objects::{MultiRegisterSpec, RegisterOp};

/// Benches one write/read pair of any SWSR facade object.
fn bench_register_pair<O>(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    k: u64,
    mut obj: O,
    op: RegisterOp,
    handle_idx: usize,
) where
    O: ConcurrentObject<MultiRegisterSpec>,
{
    group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
        let mut handles = obj.handles();
        let h = &mut handles[handle_idx];
        b.iter(|| h.apply(op));
    });
}

fn bench_write_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_write_cost");
    for k in [4u64, 8, 16, 32, 64] {
        group.throughput(Throughput::Elements(k));
        let spec = MultiRegisterSpec::new(k, 1);
        // Writing a low value: Algorithm 1 clears almost nothing, while
        // Algorithms 2/4 must clear all the way up to K: O(K) regardless.
        let w = RegisterOp::Write(2);
        bench_register_pair(
            &mut group,
            "alg1_write_low",
            k,
            VidyasankarObject::new(spec),
            w,
            0,
        );
        bench_register_pair(
            &mut group,
            "alg2_write_low",
            k,
            LockFreeHiObject::new(spec),
            w,
            0,
        );
        bench_register_pair(
            &mut group,
            "alg4_write_low",
            k,
            WaitFreeHiObject::new(spec),
            w,
            0,
        );
    }
    group.finish();
}

fn bench_read_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_read_cost");
    for k in [4u64, 16, 64] {
        let spec = MultiRegisterSpec::new(k, k);
        let r = RegisterOp::Read;
        bench_register_pair(
            &mut group,
            "alg1_read",
            k,
            VidyasankarObject::new(spec),
            r,
            1,
        );
        bench_register_pair(
            &mut group,
            "alg2_read",
            k,
            LockFreeHiObject::new(spec),
            r,
            1,
        );
        bench_register_pair(
            &mut group,
            "alg4_read",
            k,
            WaitFreeHiObject::new(spec),
            r,
            1,
        );
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    // Reader latency while a writer thread cycles values: Algorithm 2's
    // reader retries, Algorithm 4's reader is helped — the wait-free read
    // has bounded cost even under maximal write pressure.
    let mut group = c.benchmark_group("register_contended_read");
    group.sample_size(20);
    for k in [8u64, 32] {
        group.bench_with_input(BenchmarkId::new("alg4_read_vs_writer", k), &k, |b, &k| {
            let mut reg = WaitFreeHiObject::new(MultiRegisterSpec::new(k, 1));
            let mut handles = reg.handles().into_iter();
            let mut w = handles.next().unwrap();
            let mut r = handles.next().unwrap();
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut v = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        v = v % k + 1;
                        w.apply(RegisterOp::Write(v));
                    }
                });
                b.iter(|| r.apply(RegisterOp::Read));
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_write_cost, bench_read_cost, bench_contended);
criterion_main!(benches);
