//! Ablation: the price of history independence in the register algorithms,
//! as a function of K.
//!
//! Shape to reproduce: Algorithm 1's `Write(v)` costs `O(v)` primitives
//! (clear below only); Algorithms 2/4 cost `O(K)` (the upward clearing that
//! buys state-quiescent canonicity); Algorithm 4 adds a constant B/flag
//! overhead on top. Reads are `O(K)` for all three when uncontended.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hi_registers::threaded::{AtomicLockFreeHi, AtomicVidyasankar, AtomicWaitFreeHi};

fn bench_write_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_write_cost");
    for k in [4u64, 8, 16, 32, 64] {
        group.throughput(Throughput::Elements(k));
        group.bench_with_input(BenchmarkId::new("alg1_write_low", k), &k, |b, &k| {
            let mut reg = AtomicVidyasankar::new(k, 1);
            let (mut w, _r) = reg.split();
            // Writing a low value: Algorithm 1 clears almost nothing.
            b.iter(|| w.write(2));
        });
        group.bench_with_input(BenchmarkId::new("alg2_write_low", k), &k, |b, &k| {
            let mut reg = AtomicLockFreeHi::new(k, 1);
            let (mut w, _r) = reg.split();
            // Algorithm 2 must clear all the way up to K: O(K) regardless.
            b.iter(|| w.write(2));
        });
        group.bench_with_input(BenchmarkId::new("alg4_write_low", k), &k, |b, &k| {
            let mut reg = AtomicWaitFreeHi::new(k, 1);
            let (mut w, _r) = reg.split(1);
            b.iter(|| w.write(2));
        });
    }
    group.finish();
}

fn bench_read_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_read_cost");
    for k in [4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::new("alg1_read", k), &k, |b, &k| {
            let mut reg = AtomicVidyasankar::new(k, k);
            let (_w, mut r) = reg.split();
            b.iter(|| r.read());
        });
        group.bench_with_input(BenchmarkId::new("alg2_read", k), &k, |b, &k| {
            let mut reg = AtomicLockFreeHi::new(k, k);
            let (_w, mut r) = reg.split();
            b.iter(|| r.read());
        });
        group.bench_with_input(BenchmarkId::new("alg4_read", k), &k, |b, &k| {
            let mut reg = AtomicWaitFreeHi::new(k, k);
            let (_w, mut r) = reg.split(k);
            b.iter(|| r.read());
        });
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    // Reader latency while a writer thread cycles values: Algorithm 2's
    // reader retries, Algorithm 4's reader is helped — the wait-free read
    // has bounded cost even under maximal write pressure.
    let mut group = c.benchmark_group("register_contended_read");
    group.sample_size(20);
    for k in [8u64, 32] {
        group.bench_with_input(BenchmarkId::new("alg4_read_vs_writer", k), &k, |b, &k| {
            let mut reg = AtomicWaitFreeHi::new(k, 1);
            let (mut w, mut r) = reg.split(1);
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut v = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        v = v % k + 1;
                        w.write(v);
                    }
                });
                b.iter(|| r.read());
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_write_cost, bench_read_cost, bench_contended);
criterion_main!(benches);
