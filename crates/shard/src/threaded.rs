//! The concurrent sharded HI hash table: a table of independently locked,
//! independently **resizable** Robin Hood shards, phase-free like
//! [`AtomicHiHashTable`](hi_hashtable::AtomicHiHashTable) — inserts,
//! removes and lookups interleave arbitrarily — but with per-shard update
//! locks (updates to *different* shards run fully in parallel) and online
//! capacity migration.
//!
//! # Protocol
//!
//! Each [`ResizableHiShard`] runs the seqlock protocol of the single
//! table: updates CAS the shard's `seq` word even→odd, rewrite slots, and
//! store `+2`; lookups are lock-free, sighting keys without validation and
//! revalidating `seq` for absent verdicts. Two extensions:
//!
//! * **Logical capacity.** The shard owns a fixed physical arena (sized
//!   once, from the worst-case key count of its domain slice) but uses
//!   only a prefix `0..cap`, where `cap` is [`cap_for`]`(len, base)` — a
//!   pure function of the key count. `cap` lives in an atomic read by
//!   lookups; it only changes inside the seqlock critical section, so the
//!   lookup's existing `seq` validation covers it for free.
//! * **Online resize.** When an update crosses a capacity boundary it
//!   migrates the shard *before* finishing: it snapshots the arena,
//!   computes the target canonical image at the new capacity, and applies
//!   [`rewrite_plan`](crate::resize::rewrite_plan)'s never-absent write
//!   order, then publishes the new `cap`. Lookups running through the
//!   migration can still sight every surviving key; absent verdicts retry
//!   because `seq` is odd. Off-boundary updates take the same O(probe-run)
//!   fast paths as the single table (shared
//!   [`carry_writes`](hi_hashtable::carry_writes) / backward shift).
//!
//! The shard map ([`shard_of`]) is fixed, so the **global** memory
//! representation — per shard, the capacity word followed by the live
//! arena prefix — is a pure function of the abstract key set: canonical
//! layouts per shard, concatenated in shard order. That is what
//! [`ShardedHiHashTable::memory`] exposes and
//! [`ShardedHiHashTable::canonical_memory`] predicts.
//!
//! Honest reductions, mirrored in the ROADMAP: a resize serializes its
//! own shard (other shards proceed; lookups of present keys proceed), the
//! per-shard seqlock words still leak update counts, updates within one
//! shard are Blocking, and the shard *count* is fixed at construction —
//! only capacity scales online, not the shard map itself.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use hi_hashtable::{canonical_layout, carry_writes, displacement, incumbent_wins, slot_of};

use crate::resize::rewrite_plan;
use crate::{cap_for, shard_of};

const ORD: Ordering = Ordering::SeqCst;

/// One shard: a seqlock-protected Robin Hood arena with a logical
/// capacity that tracks [`cap_for`] of its key count. Keys are routed to
/// shards by [`ShardedHiHashTable`]; the shard itself accepts any nonzero
/// key that fits its arena.
#[derive(Debug)]
pub struct ResizableHiShard {
    /// The smallest capacity this shard ever uses.
    base: usize,
    /// The physical slot array; only `0..cap` is live, the tail is zero.
    arena: Box<[AtomicU32]>,
    /// Logical capacity: always `cap_for(len, base)`. Changed only inside
    /// the seqlock critical section.
    cap: AtomicUsize,
    /// Seqlock over updates: odd while an update is rewriting slots.
    seq: AtomicU64,
    /// Number of stored keys; only updated under the seqlock.
    len: AtomicUsize,
    /// Completed capacity migrations (grows and shrinks).
    resizes: AtomicU64,
    /// Total nanoseconds update operations spent inside migrations.
    resize_nanos: AtomicU64,
}

impl ResizableHiShard {
    /// Creates an empty shard that can hold up to `max_keys` keys: the
    /// physical arena is provisioned at `cap_for(max_keys, base)` once, so
    /// a migration never allocates (and never fails).
    ///
    /// # Panics
    ///
    /// Panics if `base == 0`.
    pub fn new(base: usize, max_keys: usize) -> Self {
        let arena_len = cap_for(max_keys, base);
        ResizableHiShard {
            base,
            arena: (0..arena_len).map(|_| AtomicU32::new(0)).collect(),
            cap: AtomicUsize::new(cap_for(0, base)),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            resizes: AtomicU64::new(0),
            resize_nanos: AtomicU64::new(0),
        }
    }

    /// Current logical capacity. Exact at state-quiescent points.
    pub fn capacity(&self) -> usize {
        self.cap.load(ORD)
    }

    /// The smallest capacity this shard ever uses ([`cap_for`]'s floor).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Physical arena length (the capacity ceiling).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Number of keys stored. Exact at state-quiescent points.
    pub fn len(&self) -> usize {
        self.len.load(ORD)
    }

    /// Whether the shard is empty. Exact at state-quiescent points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Completed capacity migrations so far.
    pub fn resizes(&self) -> u64 {
        self.resizes.load(ORD)
    }

    /// Total nanoseconds updates have spent migrating this shard.
    pub fn resize_nanos(&self) -> u64 {
        self.resize_nanos.load(ORD)
    }

    /// Whether no update is in flight (the seqlock word is even).
    pub fn is_quiescent(&self) -> bool {
        self.seq.load(ORD) % 2 == 0
    }

    /// The shard's memory representation: the capacity word followed by
    /// the live arena prefix. A consistent snapshot only at
    /// state-quiescent points, where it equals
    /// `[cap_for(len, base)] ++ canonical_layout(cap, keys)`.
    pub fn view(&self) -> Vec<u64> {
        let cap = self.cap.load(ORD);
        let mut view = Vec::with_capacity(cap + 1);
        view.push(cap as u64);
        view.extend(self.arena[..cap].iter().map(|s| u64::from(s.load(ORD))));
        view
    }

    /// The canonical [`view`](Self::view) of a key set this shard would
    /// hold: what an audit compares against.
    pub fn canonical_view(&self, keys: impl IntoIterator<Item = u32>) -> Vec<u64> {
        let keys: Vec<u32> = keys.into_iter().collect();
        let cap = cap_for(keys.len(), self.base);
        let mut view = Vec::with_capacity(cap + 1);
        view.push(cap as u64);
        view.extend(canonical_layout(cap, keys).into_iter().map(u64::from));
        view
    }

    /// Acquires the update seqlock; returns the odd value now in `seq`.
    fn acquire(&self) -> u64 {
        loop {
            let s = self.seq.load(ORD);
            if s % 2 == 0 && self.seq.compare_exchange(s, s + 1, ORD, ORD).is_ok() {
                return s + 1;
            }
            std::hint::spin_loop();
        }
    }

    /// Releases the update seqlock acquired at odd value `s`.
    fn release(&self, s: u64) {
        self.seq.store(s + 1, ORD);
    }

    /// Walks `key`'s probe sequence in the live prefix under the held
    /// lock. `Ok(i)`: `key` sits at slot `i`; `Err(i)`: first slot where
    /// it would be stored.
    fn probe_locked(&self, key: u32, cap: usize) -> Result<usize, usize> {
        let mut i = slot_of(key, cap);
        for _ in 0..cap {
            let occ = self.arena[i].load(ORD);
            if occ == key {
                return Ok(i);
            }
            if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                return Err(i);
            }
            i = (i + 1) % cap;
        }
        panic!("probe of {key} found no terminator: shard over-full?");
    }

    /// Migrates the live image from `cap` to `new_cap` in place (both
    /// directions), leaving the arena holding the canonical layout of
    /// `keys` at `new_cap` and publishing the new capacity. Runs under
    /// the held seqlock; every individual write keeps surviving keys
    /// present ([`rewrite_plan`]'s contract).
    fn migrate(&self, cap: usize, new_cap: usize, keys: impl IntoIterator<Item = u32>) {
        let started = Instant::now();
        let span = cap.max(new_cap);
        let current: Vec<u32> = self.arena[..span].iter().map(|s| s.load(ORD)).collect();
        let mut target = canonical_layout(new_cap, keys);
        target.resize(span, 0);
        for (slot, val) in rewrite_plan(&current, &target) {
            self.arena[slot].store(val, ORD);
        }
        self.cap.store(new_cap, ORD);
        self.resizes.fetch_add(1, ORD);
        self.resize_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, ORD);
    }

    /// Adds `key`. Returns `true` if newly added. Grows the shard first
    /// when the insert crosses the load boundary.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0` or the shard's provisioned arena cannot hold
    /// another key (a routing bug: more keys than the domain slice).
    pub fn insert(&self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        let s = self.acquire();
        let cap = self.cap.load(ORD);
        let a = match self.probe_locked(key, cap) {
            Ok(_) => {
                self.release(s);
                return false;
            }
            Err(a) => a,
        };
        let new_len = self.len.load(ORD) + 1;
        let new_cap = cap_for(new_len, self.base);
        assert!(
            new_cap <= self.arena.len(),
            "insert of {key} overflows the provisioned arena \
             ({new_len} keys in a {}-slot shard): key routed to the wrong shard?",
            self.arena.len()
        );
        if new_cap == cap {
            // Off-boundary fast path: the single-table Robin Hood carry.
            let mut run = Vec::new();
            let mut z = a;
            loop {
                let occ = self.arena[z].load(ORD);
                if occ == 0 {
                    break;
                }
                run.push(occ);
                z = (z + 1) % cap;
            }
            for (slot, val) in carry_writes(key, a, &run, cap) {
                self.arena[slot].store(val, ORD);
            }
        } else {
            let keys = self.live_keys(cap).into_iter().chain([key]);
            self.migrate(cap, new_cap, keys);
        }
        self.len.store(new_len, ORD);
        self.release(s);
        true
    }

    /// Removes `key`. Returns `true` if it was present. Shrinks the shard
    /// when the removal crosses the load boundary.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`.
    pub fn remove(&self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        let s = self.acquire();
        let cap = self.cap.load(ORD);
        let p = match self.probe_locked(key, cap) {
            Ok(p) => p,
            Err(_) => {
                self.release(s);
                return false;
            }
        };
        let new_len = self.len.load(ORD) - 1;
        let new_cap = cap_for(new_len, self.base);
        if new_cap == cap {
            // Off-boundary fast path: backward shift, near-end first.
            let mut hole = p;
            loop {
                let next = (hole + 1) % cap;
                let occ = self.arena[next].load(ORD);
                if occ == 0 || displacement(occ, next, cap) == 0 {
                    break;
                }
                self.arena[hole].store(occ, ORD);
                hole = next;
            }
            self.arena[hole].store(0, ORD);
        } else {
            let keys = self.live_keys(cap).into_iter().filter(|&k| k != key);
            self.migrate(cap, new_cap, keys);
        }
        self.len.store(new_len, ORD);
        self.release(s);
        true
    }

    /// Membership test: lock-free, never blocks updates, valid across
    /// migrations (sightings are instantaneous truths; absent verdicts
    /// revalidate `seq`, which also pins `cap`).
    ///
    /// # Panics
    ///
    /// Panics if `key == 0`.
    pub fn contains(&self, key: u32) -> bool {
        assert!(key != 0, "key 0 is reserved");
        'retry: loop {
            let s1 = self.seq.load(ORD);
            // cap changes only inside the critical section, so an even,
            // unchanged seq at the verdict also certifies this read.
            let cap = self.cap.load(ORD);
            let mut i = slot_of(key, cap);
            for _ in 0..cap {
                let occ = self.arena[i].load(ORD);
                if occ == key {
                    return true;
                }
                if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                    if s1 % 2 == 0 && self.seq.load(ORD) == s1 {
                        return false;
                    }
                    std::hint::spin_loop();
                    continue 'retry;
                }
                i = (i + 1) % cap;
            }
            // Full turn without a terminator: a migration rewrote under
            // us. Retry with a fresh seq/cap pair.
            std::hint::spin_loop();
        }
    }

    /// The keys in the live prefix. Only called under the held seqlock.
    fn live_keys(&self, cap: usize) -> Vec<u32> {
        self.arena[..cap]
            .iter()
            .map(|s| s.load(ORD))
            .filter(|&k| k != 0)
            .collect()
    }
}

/// The sharded HI hash set over `{1..=t}`: keys route to [`ResizableHiShard`]s
/// through the fixed [`shard_of`] map. All operations take `&self` and may
/// run from any number of threads in any mix; updates to different shards
/// do not contend.
#[derive(Debug)]
pub struct ShardedHiHashTable {
    t: u32,
    shards: Vec<ResizableHiShard>,
}

impl ShardedHiHashTable {
    /// Creates an empty table over `{1..=t}` with `shards` shards, each
    /// starting at logical capacity `base` and physically provisioned for
    /// its worst-case domain slice.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`, `shards == 0` or `base == 0`.
    pub fn new(t: u32, shards: usize, base: usize) -> Self {
        assert!(t >= 1, "domain must be nonempty");
        assert!(shards >= 1, "need at least one shard");
        assert!(base >= 1, "capacity base must be at least 1");
        let mut counts = vec![0usize; shards];
        for key in 1..=t {
            counts[shard_of(key, shards)] += 1;
        }
        ShardedHiHashTable {
            t,
            shards: counts
                .into_iter()
                .map(|max_keys| ResizableHiShard::new(base, max_keys))
                .collect(),
        }
    }

    /// The domain bound `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i` (for per-shard audits).
    pub fn shard(&self, i: usize) -> &ResizableHiShard {
        &self.shards[i]
    }

    /// The shard `key` routes to.
    pub fn shard_index(&self, key: u32) -> usize {
        shard_of(key, self.shards.len())
    }

    fn route(&self, key: u32) -> &ResizableHiShard {
        assert!((1..=self.t).contains(&key), "element {key} out of domain");
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Total number of keys stored. Exact at state-quiescent points.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the table is empty. Exact at state-quiescent points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `key`. Returns `true` if newly added.
    pub fn insert(&self, key: u32) -> bool {
        self.route(key).insert(key)
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&self, key: u32) -> bool {
        self.route(key).remove(key)
    }

    /// Membership test: lock-free.
    pub fn contains(&self, key: u32) -> bool {
        self.route(key).contains(key)
    }

    /// Completed capacity migrations across all shards.
    pub fn resizes(&self) -> u64 {
        self.shards.iter().map(|s| s.resizes()).sum()
    }

    /// Total nanoseconds updates have spent inside migrations, across all
    /// shards.
    pub fn resize_nanos(&self) -> u64 {
        self.shards.iter().map(|s| s.resize_nanos()).sum()
    }

    /// Whether no update is in flight in any shard.
    pub fn is_quiescent(&self) -> bool {
        self.shards.iter().all(|s| s.is_quiescent())
    }

    /// The keys currently stored, sorted (the abstract state). Only
    /// meaningful at state-quiescent points.
    pub fn keys(&self) -> Vec<u32> {
        let mut keys: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.view().into_iter().skip(1))
            .filter(|&k| k != 0)
            .map(|k| k as u32)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The global memory representation: each shard's [`view`]
    /// (capacity word + live arena prefix), concatenated in shard order.
    /// At state-quiescent points this equals
    /// [`canonical_memory`](Self::canonical_memory) of the abstract key
    /// set — the shard map and every per-shard layout are pure functions
    /// of the key set.
    ///
    /// [`view`]: ResizableHiShard::view
    pub fn memory(&self) -> Vec<u64> {
        self.shards.iter().flat_map(|s| s.view()).collect()
    }

    /// The canonical [`memory`](Self::memory) image of a key set: the
    /// composed per-shard oracle every audit compares against.
    pub fn canonical_memory(&self, keys: impl IntoIterator<Item = u32>) -> Vec<u64> {
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for key in keys {
            per_shard[shard_of(key, self.shards.len())].push(key);
        }
        self.shards
            .iter()
            .zip(per_shard)
            .flat_map(|(shard, keys)| shard.canonical_view(keys))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;

    #[test]
    fn sequential_equivalence_with_resizes() {
        let table = ShardedHiHashTable::new(64, 4, 2);
        let mut reference: BTreeSet<u32> = BTreeSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let k = rng.gen_range(1u32..=64);
            match rng.gen_range(0u8..3) {
                0 => assert_eq!(table.insert(k), reference.insert(k), "insert {k}"),
                1 => assert_eq!(table.remove(k), reference.remove(&k), "remove {k}"),
                _ => assert_eq!(table.contains(k), reference.contains(&k), "contains {k}"),
            }
            assert_eq!(table.len(), reference.len());
        }
        assert_eq!(table.keys(), reference.iter().copied().collect::<Vec<_>>());
        assert_eq!(
            table.memory(),
            table.canonical_memory(reference.iter().copied()),
            "quiescent memory must be the composed canonical image"
        );
        assert!(
            table.resizes() > 0,
            "a 2k-op churn over 64 keys must cross capacity boundaries"
        );
    }

    #[test]
    fn capacity_is_a_function_of_the_key_count() {
        // Two very different histories reaching the same key set must agree
        // on every shard's capacity word (no resize hysteresis).
        let a = ShardedHiHashTable::new(32, 2, 2);
        for k in 1..=10u32 {
            a.insert(k);
        }
        let b = ShardedHiHashTable::new(32, 2, 2);
        for k in 1..=32u32 {
            b.insert(k);
        }
        for k in 11..=32u32 {
            b.remove(k);
        }
        assert!(b.resizes() > a.resizes(), "the detour must have migrated");
        assert_eq!(a.memory(), b.memory(), "capacity words must converge too");
    }

    #[test]
    fn growth_and_shrink_pass_through_every_boundary() {
        let table = ShardedHiHashTable::new(128, 2, 2);
        for k in 1..=128u32 {
            table.insert(k);
        }
        let grown = table.resizes();
        assert!(grown >= 8, "128 keys into base-2 shards: many grows");
        for k in 1..=128u32 {
            table.remove(k);
        }
        assert!(table.resizes() > grown, "removal must shrink back");
        assert!(table.is_empty());
        for shard in 0..table.num_shards() {
            assert_eq!(
                table.shard(shard).capacity(),
                2,
                "an empty shard is back at base capacity"
            );
        }
        assert_eq!(table.memory(), table.canonical_memory([]));
    }

    #[test]
    fn mixed_concurrent_workload_converges_to_canonical() {
        for seed in 0..8u64 {
            let table = ShardedHiHashTable::new(96, 4, 2);
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let table = &table;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed * 17 + t);
                        for _ in 0..600 {
                            let k = rng.gen_range(1u32..=96);
                            match rng.gen_range(0u8..3) {
                                0 => {
                                    table.insert(k);
                                }
                                1 => {
                                    table.remove(k);
                                }
                                _ => {
                                    table.contains(k);
                                }
                            }
                        }
                    });
                }
            });
            assert!(table.is_quiescent());
            assert_eq!(
                table.memory(),
                table.canonical_memory(table.keys()),
                "seed {seed}: quiescent memory is not canonical for its own key set"
            );
        }
    }

    #[test]
    fn lookups_never_miss_a_stable_key_across_migrations() {
        // Key 1 stays put while its own shard is forced through grow and
        // shrink migrations by churning keys routed to the same shard.
        let table = ShardedHiHashTable::new(512, 2, 2);
        assert!(table.insert(1));
        let home = table.shard_index(1);
        let churn: Vec<u32> = (2..=512u32)
            .filter(|&k| table.shard_index(k) == home)
            .collect();
        assert!(churn.len() > 32, "need churn keys in key 1's shard");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let table = &table;
            let stop = &stop;
            let churn = &churn;
            s.spawn(move || {
                while !stop.load(ORD) {
                    // Fill and drain in waves so capacity keeps crossing
                    // boundaries in both directions.
                    for &k in churn.iter().take(48) {
                        table.insert(k);
                    }
                    for &k in churn.iter().take(48) {
                        table.remove(k);
                    }
                }
            });
            s.spawn(move || {
                for _ in 0..20_000 {
                    assert!(table.contains(1), "a present key was missed");
                }
                stop.store(true, ORD);
            });
        });
        assert!(table.resizes() > 0, "the churn never migrated");
    }

    #[test]
    fn racing_duplicate_inserts_place_exactly_one_copy() {
        for _ in 0..50 {
            let table = ShardedHiHashTable::new(32, 2, 2);
            let successes = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let table = &table;
                    let successes = &successes;
                    s.spawn(move || {
                        if table.insert(7) {
                            successes.fetch_add(1, ORD);
                        }
                    });
                }
            });
            assert_eq!(successes.load(ORD), 1, "exactly one insert wins");
            let copies = table.memory().into_iter().filter(|&v| v == 7).count();
            assert_eq!(copies, 1, "exactly one copy in memory");
        }
    }

    #[test]
    fn updates_in_distinct_shards_do_not_contend() {
        // Smoke check of the scale-out point: concurrent updates to
        // different shards proceed in parallel (no global lock), and the
        // end state is canonical.
        let table = ShardedHiHashTable::new(1 << 12, 8, 2);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let table = &table;
                s.spawn(move || {
                    for k in 1..=(1u32 << 12) {
                        if table.shard_index(k) == t as usize % table.num_shards() {
                            table.insert(k);
                        }
                    }
                });
            }
        });
        assert_eq!(table.len(), 1 << 12);
        assert_eq!(table.memory(), table.canonical_memory(1..=(1u32 << 12)));
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_keys_are_rejected() {
        ShardedHiHashTable::new(8, 2, 2).insert(9);
    }
}
