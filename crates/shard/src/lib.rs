#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Scale-out for the HI hash table: a hash-partitioned **table of tables**
//! over the canonical Robin Hood layout, with **online resize** — the first
//! backend in the workspace whose memory representation changes capacity at
//! run time while staying history-independent.
//!
//! # Why sharding composes with history independence
//!
//! A single [`AtomicHiHashTable`](hi_hashtable::AtomicHiHashTable) is
//! capacity-fixed, and auditing it at scale means linearizing the whole
//! table at once. Partitioning the domain by a fixed **shard map**
//! ([`shard_of`]: split-hash → shard) makes each shard an independent HI
//! object over its slice of the key set, in the style of segmented
//! invariant confluence: the global canonical representation is the
//! concatenation of the shards' canonical representations, because
//!
//! * the shard map is a *fixed function of the key* (no history in the
//!   routing), and
//! * each shard's layout is a pure function of the key subset it owns
//!   (unique representability, per shard).
//!
//! Audits therefore compose: checking every shard against its own
//! canonical layout *is* checking the global object, and a big-domain
//! deployment can trade audit latency for coverage by checking a random
//! subset of shards exhaustively (the sampled audit in `hi_api`).
//!
//! # Why resize preserves it
//!
//! Capacity is **part of the representation**, so it must itself be a
//! pure function of the abstract state: each shard's capacity is
//! [`cap_for`]`(len, base)` — the smallest `base << i` keeping load at or
//! under 3/4 — with *no hysteresis* (hysteresis would make capacity depend
//! on the history of the occupancy curve, a textbook HI leak). When an
//! update crosses a capacity boundary, the updating thread rewrites the
//! shard in place under the shard's update lock, using the same
//! duplicate-then-overwrite hazard discipline as the Robin Hood carries:
//! the [`resize::rewrite_plan`] write order guarantees a surviving key is
//! **never absent from the arena at any write prefix**, so concurrent
//! lock-free lookups can sight present keys all the way through a
//! migration (absent verdicts already revalidate the seqlock).
//!
//! The pieces:
//!
//! * [`shard_of`] / [`cap_for`] — the pure routing and capacity rules.
//! * [`resize::rewrite_plan`] — the canonical-to-canonical in-place
//!   migration order (chains and cycles, far-end first).
//! * [`threaded::ShardedHiHashTable`] — the concurrent table of tables.
//! * [`sim::SimShardedTable`] — its slot-level simulator twin, whose
//!   `hi_audit` composes per-shard `DirectCanonical` views.

pub mod resize;
pub mod sim;
pub mod threaded;

pub use resize::rewrite_plan;
pub use sim::SimShardedTable;
pub use threaded::{ResizableHiShard, ShardedHiHashTable};

/// The shard map: a fixed multiplicative split-hash, decorrelated from the
/// in-shard probe hash ([`hi_hashtable::slot_of`]) by a different odd
/// constant so a shard does not concentrate its keys on few home slots.
/// Fixed (not randomized) for the same reason as the probe hash: the
/// canonical representation must be determined at initialization.
pub fn shard_of(key: u32, shards: usize) -> usize {
    debug_assert!(key != 0, "key 0 is reserved for empty slots");
    let h = u64::from(key).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    ((h >> 32) as usize) % shards
}

/// The capacity a shard holding `count` keys must have: the smallest
/// `base << i` with `4 * count <= 3 * cap` (load factor at most 3/4, so at
/// least one slot is always empty and every probe walk terminates). A pure
/// function of the key count — *the* property that keeps capacity inside
/// the canonical representation instead of leaking resize history.
pub fn cap_for(count: usize, base: usize) -> usize {
    assert!(base >= 1, "capacity base must be at least 1");
    let mut cap = base;
    while 4 * count > 3 * cap {
        cap *= 2;
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_is_total_and_fixed() {
        for shards in 1..=8 {
            for key in 1..=1_000u32 {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "routing must be stable");
            }
        }
    }

    #[test]
    fn shard_map_spreads_a_dense_domain() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for key in 1..=4096u32 {
            counts[shard_of(key, shards)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            max - min < 4096 / shards,
            "shard occupancy {counts:?} is badly unbalanced"
        );
    }

    #[test]
    fn cap_is_a_pure_step_function_of_count() {
        assert_eq!(cap_for(0, 1), 1);
        assert_eq!(cap_for(1, 1), 2);
        assert_eq!(cap_for(2, 1), 4);
        assert_eq!(cap_for(3, 1), 4);
        assert_eq!(cap_for(4, 1), 8);
        assert_eq!(cap_for(0, 2), 2);
        assert_eq!(cap_for(1, 2), 2);
        assert_eq!(cap_for(2, 2), 4);
        for count in 0..10_000 {
            let cap = cap_for(count, 2);
            assert!(4 * count <= 3 * cap, "load bound violated at {count}");
            assert!(cap > count, "no empty slot left at {count}");
            // Minimality: the next level down would break the load bound.
            if cap > 2 {
                assert!(
                    4 * count > 3 * (cap / 2),
                    "cap {cap} not minimal at {count}"
                );
            }
        }
    }

    #[test]
    fn single_op_moves_capacity_at_most_one_level() {
        // An insert or remove changes the count by one; the capacity rule
        // must then move by at most one doubling, which is what bounds a
        // migration to one rewrite.
        for base in [1usize, 2, 4] {
            for count in 1..5_000usize {
                let here = cap_for(count, base);
                let below = cap_for(count - 1, base);
                assert!(
                    here == below || here == below * 2,
                    "count {count} base {base}: cap jumped {below} -> {here}"
                );
            }
        }
    }
}
