//! Simulator twin of [`ShardedHiHashTable`](crate::threaded::ShardedHiHashTable):
//! the per-shard seqlock protocol with online resize as a slot-level step
//! machine over [`hi_sim`]'s shared memory, one primitive per step, so the
//! seeded scheduler can interleave operations — including a migration in
//! mid-flight — and `hi_spec` can audit linearizability and canonical
//! memory.
//!
//! Memory layout, per shard in shard order: the seqlock word, the
//! **capacity word**, then the physical arena cells. The seqlock words are
//! synchronization state and excluded from the canonical representation;
//! the capacity words are *included* — capacity is part of the
//! representation and must itself be history-independent. Use
//! [`SimShardedTable::observed_view`] to project a snapshot onto the
//! composed `[cap] ++ live-prefix` view before comparing against
//! [`SimShardedTable::canonical_view_of`].
//!
//! One deliberate simplification versus the threaded backend: updates
//! here always take the migration path (snapshot the arena cell by cell,
//! plan with [`rewrite_plan`](crate::resize::rewrite_plan), write the
//! difference) instead of branching into the single-table carry fast
//! paths. Off-boundary, the plan's writes rewrite exactly the cells the
//! carry would; on-boundary, the machine exercises precisely the
//! never-absent migration order the threaded resize uses — which is the
//! behavior the schedule explorer needs to certify.

use hi_core::objects::{HashSetOp, HashSetResp, HashSetSpec};
use hi_core::{HiLevel, Pid, Progress, Roles};
use hi_hashtable::{canonical_layout, incumbent_wins, slot_of};
use hi_sim::{CellDomain, CellId, Implementation, MemCtx, ProcessHandle, SharedMem};
use hi_spec::{CanonicalView, ObservationModel, SimAudit, SimObject};

use crate::resize::rewrite_plan;
use crate::{cap_for, shard_of};

/// The shared-memory cells of one shard.
#[derive(Clone, PartialEq, Eq, Debug)]
struct ShardCells {
    seq: CellId,
    cap: CellId,
    arena: Vec<CellId>,
}

/// The sharded resizable HI hash table as a simulator implementation of
/// [`HashSetSpec`]. Any of the `n` processes may run any operation.
#[derive(Clone, Debug)]
pub struct SimShardedTable {
    spec: HashSetSpec,
    n: usize,
    base: usize,
    shards: Vec<ShardCells>,
    mem: SharedMem,
}

impl SimShardedTable {
    /// Creates a table over `{1..=t}` with `shards` shards starting at
    /// logical capacity `base`, shared by `n` processes. Each shard's
    /// physical arena is provisioned for its worst-case domain slice, as
    /// in the threaded backend.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`, `shards == 0` or `base == 0`.
    pub fn new(t: u32, shards: usize, base: usize, n: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(base >= 1, "capacity base must be at least 1");
        let spec = HashSetSpec::new(t);
        let mut counts = vec![0usize; shards];
        for key in 1..=t {
            counts[shard_of(key, shards)] += 1;
        }
        let mut mem = SharedMem::new();
        let cells = counts
            .iter()
            .enumerate()
            .map(|(s, &max_keys)| {
                let seq = mem.alloc(format!("S{s}.seq"), CellDomain::Word, 0);
                let cap = mem.alloc(
                    format!("S{s}.cap"),
                    CellDomain::Word,
                    cap_for(0, base) as u64,
                );
                let arena = (0..cap_for(max_keys, base))
                    .map(|i| {
                        mem.alloc(
                            format!("S{s}.H[{i}]"),
                            CellDomain::Bounded(u64::from(t) + 1),
                            0,
                        )
                    })
                    .collect();
                ShardCells { seq, cap, arena }
            })
            .collect();
        SimShardedTable {
            spec,
            n,
            base,
            shards: cells,
            mem,
        }
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Projects a full memory snapshot onto the composed representation:
    /// per shard, the capacity word followed by the live arena prefix
    /// (seqlock words dropped, dead arena tails dropped).
    pub fn observed_view(&self, snap: &[u64]) -> Vec<u64> {
        let mut view = Vec::new();
        let mut off = 0;
        for cells in &self.shards {
            let cap = snap[off + 1] as usize;
            view.push(snap[off + 1]);
            view.extend_from_slice(&snap[off + 2..off + 2 + cap]);
            off += 2 + cells.arena.len();
        }
        view
    }

    /// The abstract state (bitmask) decoded from a snapshot's arena
    /// cells. Only meaningful at state-quiescent points.
    pub fn decode_state(&self, snap: &[u64]) -> u64 {
        let mut off = 0;
        let mut state = 0u64;
        for cells in &self.shards {
            for &v in &snap[off + 2..off + 2 + cells.arena.len()] {
                if v != 0 {
                    state |= 1 << v;
                }
            }
            off += 2 + cells.arena.len();
        }
        state
    }

    /// The canonical composed view of abstract state `state`: per shard,
    /// `cap_for` of its key count followed by the canonical layout of its
    /// key slice — the same oracle the threaded
    /// [`canonical_memory`](crate::threaded::ShardedHiHashTable::canonical_memory)
    /// computes.
    pub fn canonical_view_of(&self, state: u64) -> Vec<u64> {
        let shards = self.shards.len();
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for key in (1..=self.spec.t()).filter(|e| state & (1 << e) != 0) {
            per_shard[shard_of(key, shards)].push(key);
        }
        let mut view = Vec::new();
        for keys in per_shard {
            let cap = cap_for(keys.len(), self.base);
            view.push(cap as u64);
            view.extend(canonical_layout(cap, keys).into_iter().map(u64::from));
        }
        view
    }
}

/// What an update does once it has scanned its shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum UpdateKind {
    Insert(u32),
    Remove(u32),
}

impl UpdateKind {
    fn key(&self) -> u32 {
        match self {
            UpdateKind::Insert(k) | UpdateKind::Remove(k) => *k,
        }
    }
}

/// Program counter of one table operation.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Pc {
    Idle,
    /// Update path: read the shard's `seq`, hoping for an even value.
    AcquireRead {
        op: UpdateKind,
    },
    /// Update path: CAS the shard's `seq` from even `s` to `s + 1`.
    AcquireCas {
        op: UpdateKind,
        s: u64,
    },
    /// Update path: read the shard's capacity word under the held lock.
    ReadCap {
        op: UpdateKind,
        s: u64,
    },
    /// Update path: snapshot the shard's arena, one cell per step; the
    /// final step plans the rewrite.
    Scan {
        op: UpdateKind,
        s: u64,
        cap: usize,
        cells: Vec<u32>,
    },
    /// Apply the planned cell writes (arena, then possibly the capacity
    /// word), one per step; the step after the last write batches the
    /// seqlock release with the response.
    Write {
        shard: usize,
        s: u64,
        writes: Vec<(CellId, u64)>,
        idx: usize,
        resp: bool,
    },
    /// Lookup: read the shard's `seq` to open the validation window.
    LookSeq {
        key: u32,
    },
    /// Lookup: read the capacity word.
    LookCap {
        key: u32,
        s1: u64,
    },
    /// Lookup: probe walk over the live prefix.
    LookScan {
        key: u32,
        s1: u64,
        cap: usize,
        i: usize,
        travelled: usize,
    },
    /// Lookup: re-read `seq`; absent verdict stands only if
    /// unchanged+even (which also certifies the capacity read).
    LookValidate {
        key: u32,
        s1: u64,
    },
}

/// The per-process step machine of [`SimShardedTable`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimShardedTableProcess {
    base: usize,
    shards: Vec<ShardCells>,
    pc: Pc,
}

impl SimShardedTableProcess {
    fn shard_for(&self, key: u32) -> usize {
        shard_of(key, self.shards.len())
    }

    fn cells_for(&self, key: u32) -> &ShardCells {
        &self.shards[self.shard_for(key)]
    }
}

impl ProcessHandle<HashSetSpec> for SimShardedTableProcess {
    fn invoke(&mut self, op: HashSetOp) {
        assert!(self.is_idle(), "operation already pending");
        self.pc = match op {
            HashSetOp::Insert(e) => Pc::AcquireRead {
                op: UpdateKind::Insert(e),
            },
            HashSetOp::Remove(e) => Pc::AcquireRead {
                op: UpdateKind::Remove(e),
            },
            HashSetOp::Contains(e) => Pc::LookSeq { key: e },
        };
    }

    fn is_idle(&self) -> bool {
        self.pc == Pc::Idle
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> Option<HashSetResp> {
        match self.pc.clone() {
            Pc::Idle => panic!("step of idle process"),
            Pc::AcquireRead { op } => {
                let s = ctx.read(self.cells_for(op.key()).seq);
                self.pc = if s % 2 == 0 {
                    Pc::AcquireCas { op, s }
                } else {
                    Pc::AcquireRead { op }
                };
                None
            }
            Pc::AcquireCas { op, s } => {
                self.pc = if ctx.cas(self.cells_for(op.key()).seq, s, s + 1) {
                    Pc::ReadCap { op, s: s + 1 }
                } else {
                    Pc::AcquireRead { op }
                };
                None
            }
            Pc::ReadCap { op, s } => {
                let cap = ctx.read(self.cells_for(op.key()).cap) as usize;
                self.pc = Pc::Scan {
                    op,
                    s,
                    cap,
                    cells: Vec::new(),
                };
                None
            }
            Pc::Scan {
                op,
                s,
                cap,
                mut cells,
            } => {
                let shard = self.shard_for(op.key());
                let sc = &self.shards[shard];
                let occ = ctx.read(sc.arena[cells.len()]) as u32;
                cells.push(occ);
                if cells.len() < sc.arena.len() {
                    self.pc = Pc::Scan { op, s, cap, cells };
                    return None;
                }
                // Arena snapshot complete (we hold the lock, so it is the
                // canonical live image plus a zero tail): decide, plan.
                let key = op.key();
                let mut keys: Vec<u32> = cells.iter().copied().filter(|&k| k != 0).collect();
                let present = keys.contains(&key);
                let (resp, mutate) = match op {
                    UpdateKind::Insert(_) => {
                        if present {
                            (false, false)
                        } else {
                            keys.push(key);
                            (true, true)
                        }
                    }
                    UpdateKind::Remove(_) => {
                        if present {
                            keys.retain(|&k| k != key);
                            (true, true)
                        } else {
                            (false, false)
                        }
                    }
                };
                let mut writes: Vec<(CellId, u64)> = Vec::new();
                if mutate {
                    let new_cap = cap_for(keys.len(), self.base);
                    let mut target = canonical_layout(new_cap, keys);
                    target.resize(sc.arena.len(), 0);
                    writes = rewrite_plan(&cells, &target)
                        .into_iter()
                        .map(|(i, v)| (sc.arena[i], u64::from(v)))
                        .collect();
                    if new_cap != cap {
                        writes.push((sc.cap, new_cap as u64));
                    }
                }
                self.pc = Pc::Write {
                    shard,
                    s,
                    writes,
                    idx: 0,
                    resp,
                };
                None
            }
            Pc::Write {
                shard,
                s,
                writes,
                idx,
                resp,
            } => {
                if idx < writes.len() {
                    let (cell, val) = writes[idx];
                    ctx.write(cell, val);
                    self.pc = Pc::Write {
                        shard,
                        s,
                        writes,
                        idx: idx + 1,
                        resp,
                    };
                    None
                } else {
                    // No primitive left to batch with the release; fall
                    // through to the release store on this step.
                    ctx.write(self.shards[shard].seq, s + 1);
                    self.pc = Pc::Idle;
                    Some(HashSetResp::Bool(resp))
                }
            }
            Pc::LookSeq { key } => {
                let s1 = ctx.read(self.cells_for(key).seq);
                self.pc = Pc::LookCap { key, s1 };
                None
            }
            Pc::LookCap { key, s1 } => {
                let cap = ctx.read(self.cells_for(key).cap) as usize;
                self.pc = Pc::LookScan {
                    key,
                    s1,
                    cap,
                    i: slot_of(key, cap),
                    travelled: 0,
                };
                None
            }
            Pc::LookScan {
                key,
                s1,
                cap,
                i,
                travelled,
            } => {
                if travelled >= cap {
                    // Full turn without a terminator: interference; retry.
                    self.pc = Pc::LookSeq { key };
                    return None;
                }
                let occ = ctx.read(self.cells_for(key).arena[i]) as u32;
                if occ == key {
                    self.pc = Pc::Idle;
                    return Some(HashSetResp::Bool(true));
                }
                if occ == 0 || !incumbent_wins(occ, key, i, cap) {
                    self.pc = Pc::LookValidate { key, s1 };
                } else {
                    self.pc = Pc::LookScan {
                        key,
                        s1,
                        cap,
                        i: (i + 1) % cap,
                        travelled: travelled + 1,
                    };
                }
                None
            }
            Pc::LookValidate { key, s1 } => {
                let s2 = ctx.read(self.cells_for(key).seq);
                if s1 % 2 == 0 && s2 == s1 {
                    self.pc = Pc::Idle;
                    Some(HashSetResp::Bool(false))
                } else {
                    self.pc = Pc::LookSeq { key };
                    None
                }
            }
        }
    }

    fn peeked_cell(&self) -> Option<CellId> {
        match &self.pc {
            Pc::Idle => None,
            Pc::AcquireRead { op } | Pc::AcquireCas { op, .. } => {
                Some(self.cells_for(op.key()).seq)
            }
            Pc::ReadCap { op, .. } => Some(self.cells_for(op.key()).cap),
            Pc::Scan { op, cells, .. } => Some(self.cells_for(op.key()).arena[cells.len()]),
            Pc::Write {
                shard, writes, idx, ..
            } => Some(if *idx < writes.len() {
                writes[*idx].0
            } else {
                self.shards[*shard].seq
            }),
            Pc::LookSeq { key } | Pc::LookValidate { key, .. } => Some(self.cells_for(*key).seq),
            Pc::LookCap { key, .. } => Some(self.cells_for(*key).cap),
            Pc::LookScan { key, i, .. } => Some(self.cells_for(*key).arena[*i]),
        }
    }
}

impl Implementation<HashSetSpec> for SimShardedTable {
    type Process = SimShardedTableProcess;

    fn spec(&self) -> &HashSetSpec {
        &self.spec
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn init_memory(&self) -> SharedMem {
        self.mem.clone()
    }

    fn make_process(&self, _pid: Pid) -> SimShardedTableProcess {
        SimShardedTableProcess {
            base: self.base,
            shards: self.shards.clone(),
            pc: Pc::Idle,
        }
    }
}

impl SimObject<HashSetSpec> for SimShardedTable {
    type Machine = Self;

    fn spec(&self) -> &HashSetSpec {
        &self.spec
    }

    fn roles(&self) -> Roles {
        Roles::MultiProcess { n: self.n }
    }

    fn hi_level(&self) -> HiLevel {
        HiLevel::StateQuiescent
    }

    fn progress(&self) -> Progress {
        // Per-shard seqlocks: an updater crashing inside a critical
        // section (worst case: mid-migration) wedges that shard's updates
        // and absent-verdict lookups forever. Same class and same ROADMAP
        // follow-up as the single-table backend.
        Progress::Blocking
    }

    fn implementation(&self) -> &Self {
        self
    }

    /// Direct canonicity of the **composed** representation: at every
    /// state-quiescent point, each shard's capacity word and live arena
    /// prefix must equal `cap_for` and the canonical layout of its slice
    /// of the decoded key set. Seqlock words are excluded (synchronization
    /// state); capacity words are included — capacity is representation,
    /// and auditing it is what certifies resize history does not leak.
    fn hi_audit(&self) -> SimAudit<HashSetSpec, Self> {
        let oracle = self.clone();
        SimAudit::direct_canonical(ObservationModel::StateQuiescent, move |snap| {
            let state = oracle.decode_state(snap);
            CanonicalView {
                observed: oracle.observed_view(snap),
                canonical: oracle.canonical_view_of(state),
                state: format!("{state:#b}"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::ObjectSpec;
    use hi_sim::Executor;

    #[test]
    fn solo_ops_match_the_sequential_oracle() {
        let imp = SimShardedTable::new(6, 2, 1, 2);
        let mut exec = Executor::new(imp.clone());
        let script = [
            (HashSetOp::Insert(3), true),
            (HashSetOp::Insert(3), false),
            (HashSetOp::Insert(5), true),
            (HashSetOp::Contains(5), true),
            (HashSetOp::Remove(3), true),
            (HashSetOp::Remove(3), false),
            (HashSetOp::Contains(3), false),
        ];
        let mut state = 0u64;
        for (op, expect) in script {
            let resp = exec.run_op_solo(Pid(0), op, 10_000).unwrap();
            assert_eq!(resp, HashSetResp::Bool(expect), "{op:?}");
            state = exec.spec().apply(&state, &op).0;
            assert_eq!(
                imp.observed_view(&exec.snapshot()),
                imp.canonical_view_of(state),
                "state-quiescent composed view canonical after {op:?}"
            );
            assert_eq!(imp.decode_state(&exec.snapshot()), state);
        }
    }

    #[test]
    fn capacity_words_track_the_key_count_through_grow_and_shrink() {
        // base = 1: the very first insert into a shard forces a grow
        // (cap_for(1,1) = 2), and the last remove shrinks back to 1. The
        // capacity word must follow cap_for exactly at every quiescent
        // point — that is the no-hysteresis property.
        let imp = SimShardedTable::new(6, 2, 1, 1);
        let mut exec = Executor::new(imp.clone());
        let mut state = 0u64;
        let script = [
            HashSetOp::Insert(1),
            HashSetOp::Insert(2),
            HashSetOp::Insert(4),
            HashSetOp::Remove(2),
            HashSetOp::Remove(1),
            HashSetOp::Remove(4),
        ];
        for op in script {
            exec.run_op_solo(Pid(0), op, 10_000).unwrap();
            state = exec.spec().apply(&state, &op).0;
            let view = imp.observed_view(&exec.snapshot());
            assert_eq!(view, imp.canonical_view_of(state), "after {op:?}");
        }
        // Empty again: every capacity word is back at base, so the final
        // composed view equals the initial one — resize history erased.
        assert_eq!(
            imp.observed_view(&exec.snapshot()),
            imp.canonical_view_of(0)
        );
    }

    #[test]
    fn lookup_retries_while_a_migration_is_in_flight() {
        let imp = SimShardedTable::new(6, 1, 1, 2);
        let mut exec = Executor::new(imp);
        exec.run_op_solo(Pid(0), HashSetOp::Insert(2), 10_000)
            .unwrap();
        // Start an insert that will migrate (cap 2 -> 4) and stall it
        // mid-critical-section.
        exec.invoke(Pid(0), HashSetOp::Insert(5));
        for _ in 0..4 {
            assert!(exec.step(Pid(0)).is_none());
        }
        // An absent verdict cannot be produced while the shard's seqlock
        // is odd: the lookup cycles through its retry loop.
        exec.invoke(Pid(1), HashSetOp::Contains(4));
        for _ in 0..40 {
            assert!(
                exec.step(Pid(1)).is_none(),
                "absent verdict accepted while a migration was in flight"
            );
        }
        // Present keys are still sighted mid-migration.
        let resp = exec.run_solo(Pid(0), 10_000).unwrap().1;
        assert_eq!(resp, HashSetResp::Bool(true));
        let resp = exec.run_solo(Pid(1), 10_000).unwrap().1;
        assert_eq!(resp, HashSetResp::Bool(false));
    }
}
