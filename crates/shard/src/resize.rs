//! The online-migration write planner: turns one canonical arena image
//! into another **in place**, in an order that never makes a surviving key
//! absent — the resize-sized generalization of the Robin Hood carry's
//! duplicate-then-overwrite discipline
//! ([`carry_writes`](hi_hashtable::carry_writes)).
//!
//! # The hazard, and the order that avoids it
//!
//! A capacity change rehashes every key, so a migration is an arbitrary
//! rearrangement of the arena, not a single probe-run shift. The invariant
//! concurrent lookups rely on is unchanged though: a key present in both
//! the old and the new image must be **somewhere in the arena after every
//! individual write** (lookups sight keys; only absent verdicts revalidate
//! the seqlock). [`rewrite_plan`] achieves this by writing each key's new
//! cell *before* overwriting its old cell:
//!
//! * Cell `j` (holding surviving key `k`) may only be overwritten after
//!   the write that places `k` at its target cell. Since canonical images
//!   hold no duplicates, that dependency relation has in- and out-degree
//!   at most one: the changed cells decompose into **chains** (emitted
//!   far-end first, exactly like the carry) and **cycles**.
//! * A cycle of keys displacing one another has no safe first write; it is
//!   broken by parking the first key in a **spare cell** (empty in both
//!   images — one always exists when a cycle does, because the 3/4 load
//!   bound and the one-empty-slot rule leave both images under-full),
//!   walking the cycle, then clearing the spare.
//!
//! The planner is pure and shared verbatim by the threaded backend and the
//! simulator twin, so the two can never drift — the same
//! one-source-of-truth discipline `carry_writes` established.

use std::collections::HashMap;

/// The in-place migration order from arena image `current` to arena image
/// `target` (equal lengths; 0 = empty): the `(cell, value)` writes, in an
/// order such that
///
/// * after every write prefix, every key present in **both** images is
///   somewhere in the arena (never-absent),
/// * every intermediate nonzero cell value is a key of `current` or
///   `target` (no invented keys), and
/// * after the final write the arena equals `target`.
///
/// Cells equal in both images are never touched. Deterministic: the same
/// image pair always yields the same write sequence.
///
/// # Panics
///
/// Panics if the images' lengths differ, if either contains a duplicate
/// key, or if a displacement cycle exists but no cell is empty in both
/// images (impossible for images respecting the `cap_for` load bound).
pub fn rewrite_plan(current: &[u32], target: &[u32]) -> Vec<(usize, u32)> {
    assert_eq!(
        current.len(),
        target.len(),
        "migration images must have equal padded lengths"
    );
    let n = current.len();
    let mut target_pos: HashMap<u32, usize> = HashMap::new();
    for (j, &k) in target.iter().enumerate() {
        if k != 0 {
            assert!(
                target_pos.insert(k, j).is_none(),
                "duplicate key {k} in target image"
            );
        }
    }
    let changed: Vec<usize> = (0..n).filter(|&j| current[j] != target[j]).collect();
    // pred[j] = the cell that must be written before cell j is overwritten
    // (the target cell of j's current key); succ is its inverse. Both are
    // partial and injective because canonical images hold each key once.
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut succ: Vec<Option<usize>> = vec![None; n];
    for &j in &changed {
        let k = current[j];
        if k == 0 {
            continue;
        }
        if let Some(&p) = target_pos.get(&k) {
            debug_assert_ne!(p, j, "unchanged cell classified as changed");
            debug_assert!(
                current[p] != target[p],
                "a surviving key's target cell must itself change"
            );
            pred[j] = Some(p);
            assert!(
                succ[p].replace(j).is_none(),
                "duplicate key {k} in current image"
            );
        }
    }
    let mut writes = Vec::with_capacity(changed.len());
    let mut done = vec![false; n];
    // Chains: start at cells whose current content needs no preservation
    // (empty, or a key absent from the target image) and walk forward —
    // each write lands a key before the next write overwrites its old copy.
    for &root in &changed {
        if pred[root].is_some() {
            continue;
        }
        let mut j = root;
        loop {
            writes.push((j, target[j]));
            done[j] = true;
            match succ[j] {
                Some(next) => j = next,
                None => break,
            }
        }
    }
    // Cycles: everything not reached from a chain root. Park the entry
    // key in a spare cell (empty in both images), walk the cycle, clear
    // the spare. The spare is reused serially across cycles.
    let mut spare: Option<usize> = None;
    for &entry in &changed {
        if done[entry] {
            continue;
        }
        let spare = *spare.get_or_insert_with(|| {
            (0..n).find(|&e| current[e] == 0 && target[e] == 0).expect(
                "no spare cell for a cyclic migration: \
                     both images exceed the load bound",
            )
        });
        writes.push((spare, current[entry]));
        let mut j = entry;
        loop {
            writes.push((j, target[j]));
            done[j] = true;
            let next = succ[j].expect("cycle cell lost its successor");
            if next == entry {
                break;
            }
            j = next;
        }
        writes.push((spare, 0));
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::SplitMix64;
    use hi_hashtable::canonical_layout;

    /// Applies `plan` to a copy of `current`, asserting the never-absent
    /// and no-invented-keys invariants at every write prefix. Returns the
    /// final image and whether any cell was written twice (the spare-cell
    /// signature of a cycle).
    fn apply_checked(current: &[u32], target: &[u32], plan: &[(usize, u32)]) -> (Vec<u32>, bool) {
        use std::collections::HashSet;
        let keep: HashSet<u32> = current
            .iter()
            .filter(|k| **k != 0 && target.contains(k))
            .copied()
            .collect();
        let legal: HashSet<u32> = current
            .iter()
            .chain(target.iter())
            .copied()
            .filter(|&k| k != 0)
            .collect();
        let mut mem = current.to_vec();
        let mut touched = vec![0usize; mem.len()];
        for &(cell, val) in plan {
            mem[cell] = val;
            touched[cell] += 1;
            for k in &keep {
                assert!(
                    mem.contains(k),
                    "surviving key {k} absent after writing {val} to cell {cell}"
                );
            }
            for &v in mem.iter().filter(|&&v| v != 0) {
                assert!(v == val || legal.contains(&v), "invented key {v}");
            }
        }
        (mem, touched.iter().any(|&c| c > 1))
    }

    #[test]
    fn identical_images_need_no_writes() {
        let img = canonical_layout(8, [3u32, 9, 17]);
        assert!(rewrite_plan(&img, &img).is_empty());
    }

    #[test]
    fn grow_and_shrink_migrations_are_prefix_safe() {
        // Random key sets, random single-key delta, both directions of a
        // doubling: the plan must reach the target with the never-absent
        // invariant held at every prefix. (The cycle/spare path is pinned
        // separately by the hand-built permutation test below — random
        // rehash migrations almost never produce pure cycles.)
        let mut rng = SplitMix64::new(0x5a5a);
        for _ in 0..400 {
            let old_cap = 1usize << (2 + rng.below(4)); // 4..=32
            let count = rng.below(3 * old_cap / 4);
            let mut keys: Vec<u32> = Vec::new();
            while keys.len() < count {
                let k = 1 + rng.below(200) as u32;
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            for (new_cap, delta_insert) in [(old_cap * 2, true), (old_cap, true), (old_cap, false)]
            {
                let mut new_keys = keys.clone();
                if delta_insert {
                    let mut k = 1 + rng.below(200) as u32;
                    while new_keys.contains(&k) {
                        k += 1;
                    }
                    new_keys.push(k);
                } else if let Some(victim) = keys.first() {
                    new_keys.retain(|k| k != victim);
                } else {
                    continue;
                }
                if new_keys.len() + 1 > new_cap {
                    continue;
                }
                let n = old_cap.max(new_cap);
                let mut current = canonical_layout(old_cap, keys.iter().copied());
                current.resize(n, 0);
                let mut target = canonical_layout(new_cap, new_keys.iter().copied());
                target.resize(n, 0);
                let plan = rewrite_plan(&current, &target);
                let (image, _) = apply_checked(&current, &target, &plan);
                assert_eq!(image, target, "migration did not reach the target image");
            }
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let current = canonical_layout(8, [1u32, 5, 9, 13]);
        let mut target = canonical_layout(16, [1u32, 5, 9, 13, 21]);
        let mut cur = current.clone();
        cur.resize(16, 0);
        target.truncate(16);
        assert_eq!(rewrite_plan(&cur, &target), rewrite_plan(&cur, &target));
    }

    #[test]
    fn pure_permutation_cycles_resolve_through_the_spare() {
        // A hand-built 3-cycle: keys rotate cells between two images of
        // equal capacity. No chain roots exist, so the plan must park a
        // key in a spare cell and clear it at the end.
        let current = vec![1u32, 2, 3, 0];
        let target = vec![2u32, 3, 1, 0];
        let plan = rewrite_plan(&current, &target);
        let (image, cycled) = apply_checked(&current, &target, &plan);
        assert_eq!(image, target);
        assert!(cycled, "the spare cell was never used");
        assert_eq!(plan.first(), Some(&(3, 1)), "entry key parked in the spare");
        assert_eq!(plan.last(), Some(&(3, 0)), "spare cleared at the end");
    }
}
