//! Exact rational probabilities.

use std::fmt;
use std::ops::Add;

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// A non-negative rational number in lowest terms, used for exact
/// probability bookkeeping during tape enumeration.
///
/// # Example
///
/// ```
/// use hi_randomized::Fraction;
///
/// let third = Fraction::new(1, 3);
/// let sixth = Fraction::new(1, 6);
/// assert_eq!(third + third + third, Fraction::one());
/// assert_eq!(sixth + sixth, third);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fraction {
    num: u128,
    den: u128,
}

impl Fraction {
    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u128, den: u128) -> Self {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den);
        Fraction {
            num: num / g,
            den: den / g,
        }
    }

    /// The zero probability.
    pub fn zero() -> Self {
        Fraction { num: 0, den: 1 }
    }

    /// The certain probability.
    pub fn one() -> Self {
        Fraction { num: 1, den: 1 }
    }

    /// The numerator (in lowest terms).
    pub fn numerator(&self) -> u128 {
        self.num
    }

    /// The denominator (in lowest terms).
    pub fn denominator(&self) -> u128 {
        self.den
    }

    /// `self * (1/k)` — one uniform draw among `k` choices.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or on overflow (tapes long enough to overflow
    /// `u128` denominators are far beyond what enumeration can visit).
    pub fn scale_down(&self, k: usize) -> Self {
        assert!(k > 0, "draw among zero choices");
        Fraction::new(
            self.num,
            self.den
                .checked_mul(k as u128)
                .expect("probability underflow"),
        )
    }
}

impl Add for Fraction {
    type Output = Fraction;

    fn add(self, rhs: Fraction) -> Fraction {
        let den = self.den.checked_mul(rhs.den).expect("denominator overflow");
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).map(|b| a + b))
            .expect("numerator overflow");
        Fraction::new(num, den)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction() {
        assert_eq!(Fraction::new(2, 4), Fraction::new(1, 2));
        assert_eq!(Fraction::new(0, 7), Fraction::zero());
    }

    #[test]
    fn addition() {
        let f = Fraction::new(1, 6) + Fraction::new(1, 3);
        assert_eq!(f, Fraction::new(1, 2));
    }

    #[test]
    fn scaling() {
        assert_eq!(Fraction::one().scale_down(4), Fraction::new(1, 4));
        assert_eq!(Fraction::new(1, 2).scale_down(3), Fraction::new(1, 6));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        Fraction::new(1, 0);
    }
}
