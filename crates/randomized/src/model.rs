//! The randomized implementation model and the exact WHI/SHI checkers.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::Hash;

use crate::fraction::Fraction;

/// The randomness source handed to [`RandomizedImpl::apply`]: an explicit
/// tape of choices, replayed by the enumerator.
///
/// Each call to [`draw`](Draws::draw) consumes one tape entry. When the tape
/// is exhausted the draw is recorded as *needed* and a placeholder `0` is
/// returned; the run's results are discarded and the enumerator re-runs the
/// sequence once per possible choice. Implementations must therefore
/// tolerate any value `< k` from every draw (they cannot tell replay from
/// first run — which is the point).
#[derive(Clone, Debug)]
pub struct Draws {
    tape: Vec<usize>,
    pos: usize,
    arities: Vec<usize>,
    needed: Option<usize>,
}

impl Draws {
    fn replay(tape: Vec<usize>) -> Self {
        Draws {
            tape,
            pos: 0,
            arities: Vec::new(),
            needed: None,
        }
    }

    /// Draws uniformly from `0..k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn draw(&mut self, k: usize) -> usize {
        assert!(k > 0, "draw among zero choices");
        if let Some(&choice) = self.tape.get(self.pos) {
            self.pos += 1;
            self.arities.push(k);
            debug_assert!(choice < k, "tape entry out of range for arity {k}");
            choice
        } else {
            self.needed = Some(k);
            self.pos += 1;
            0
        }
    }

    fn incomplete(&self) -> Option<usize> {
        self.needed
    }

    /// The probability of this tape: the product of `1/arity` over all
    /// completed draws.
    fn weight(&self) -> Fraction {
        self.arities
            .iter()
            .fold(Fraction::one(), |w, &k| w.scale_down(k))
    }
}

/// A sequential implementation whose operations may flip coins.
///
/// This mirrors the paper's sequential setting of §2: an abstract object
/// plus a memory representation, with randomness made explicit so that
/// distributions can be enumerated exactly rather than sampled.
pub trait RandomizedImpl {
    /// Operation type.
    type Op: Clone + fmt::Debug;
    /// Memory representation (the observable).
    type Mem: Clone + Eq + Hash + fmt::Debug;
    /// Abstract state (what HI is allowed to reveal).
    type State: Clone + Eq + fmt::Debug;

    /// The initial memory representation.
    fn initial(&self) -> Self::Mem;

    /// Applies one operation, drawing randomness from `draws`.
    fn apply(&self, mem: &Self::Mem, op: &Self::Op, draws: &mut Draws) -> Self::Mem;

    /// The abstract state represented by a memory.
    fn abstract_state(&self, mem: &Self::Mem) -> Self::State;
}

/// An exact probability distribution over values of type `T`.
pub type Distribution<T> = HashMap<T, Fraction>;

/// Computes the exact joint distribution of the memory representations at
/// the given observation `points` (1-based operation counts, as in
/// Definition 2: point `i` observes the memory after the `i`-th operation)
/// along the operation sequence `ops`.
///
/// Enumerates every choice tape; runtime is the product of the draw
/// arities, so keep examples small (the paper's examples need only a
/// handful of slots).
///
/// # Panics
///
/// Panics if a point is out of range (`0` or greater than `ops.len()`).
pub fn joint_distribution<I: RandomizedImpl>(
    imp: &I,
    ops: &[I::Op],
    points: &[usize],
) -> Distribution<Vec<I::Mem>> {
    for &p in points {
        assert!(
            (1..=ops.len()).contains(&p),
            "observation point {p} out of range"
        );
    }
    let mut dist: Distribution<Vec<I::Mem>> = HashMap::new();
    // DFS over tape prefixes.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(tape) = stack.pop() {
        let mut draws = Draws::replay(tape.clone());
        let mut mem = imp.initial();
        let mut observed: Vec<I::Mem> = Vec::with_capacity(points.len());
        let mut forked = false;
        for (i, op) in ops.iter().enumerate() {
            mem = imp.apply(&mem, op, &mut draws);
            if let Some(k) = draws.incomplete() {
                // The run needs one more draw than the tape provides: fork
                // into one extended tape per possible choice.
                for choice in 0..k {
                    let mut t = tape.clone();
                    t.push(choice);
                    stack.push(t);
                }
                forked = true;
                break;
            }
            for &p in points {
                if p == i + 1 {
                    observed.push(mem.clone());
                }
            }
        }
        if forked {
            continue;
        }
        let entry = dist.entry(observed).or_insert_with(Fraction::zero);
        *entry = *entry + draws.weight();
    }
    debug_assert_eq!(
        dist.values().copied().fold(Fraction::zero(), |a, b| a + b),
        Fraction::one(),
        "distribution must sum to 1"
    );
    dist
}

/// Evidence that two histories induce different memory distributions at the
/// compared observation points.
#[derive(Clone, Debug)]
pub struct HiDistributionViolation<M> {
    /// A memory tuple whose probability differs.
    pub witness: Vec<M>,
    /// Its probability under the first history.
    pub p1: Fraction,
    /// Its probability under the second history.
    pub p2: Fraction,
}

impl<M: fmt::Debug> fmt::Display for HiDistributionViolation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "observation {:?} has probability {} under history 1 but {} under history 2",
            self.witness, self.p1, self.p2
        )
    }
}

impl<M: fmt::Debug> Error for HiDistributionViolation<M> {}

fn compare<M: Clone + Eq + Hash + fmt::Debug>(
    d1: &Distribution<Vec<M>>,
    d2: &Distribution<Vec<M>>,
) -> Result<(), HiDistributionViolation<M>> {
    for (key, &p1) in d1 {
        let p2 = d2.get(key).copied().unwrap_or_else(Fraction::zero);
        if p1 != p2 {
            return Err(HiDistributionViolation {
                witness: key.clone(),
                p1,
                p2,
            });
        }
    }
    for (key, &p2) in d2 {
        if !d1.contains_key(key) {
            return Err(HiDistributionViolation {
                witness: key.clone(),
                p1: Fraction::zero(),
                p2,
            });
        }
    }
    Ok(())
}

/// Checks **weak history independence** (Definition 1) for one pair of
/// operation sequences: both must take the object from the initial state to
/// the same state and must induce the same distribution on the final memory
/// representation.
///
/// # Errors
///
/// Returns the differing observation if the distributions are not equal.
///
/// # Panics
///
/// Panics if the sequences are empty or do not reach the same abstract
/// state (the definition only constrains same-state pairs).
pub fn check_whi<I: RandomizedImpl>(
    imp: &I,
    seq1: &[I::Op],
    seq2: &[I::Op],
) -> Result<(), HiDistributionViolation<I::Mem>> {
    assert!(
        !seq1.is_empty() && !seq2.is_empty(),
        "sequences must be nonempty"
    );
    assert_states_match(imp, seq1, seq2);
    let d1 = joint_distribution(imp, seq1, &[seq1.len()]);
    let d2 = joint_distribution(imp, seq2, &[seq2.len()]);
    compare(&d1, &d2)
}

/// Checks **strong history independence** (Definition 2) for one pair of
/// `(sequence, observation points)` instances: corresponding prefixes must
/// reach the same states, and the joint distributions over the observed
/// memory tuples must be identical.
///
/// # Errors
///
/// Returns the differing observation tuple if the joint distributions are
/// not equal.
///
/// # Panics
///
/// Panics if the point lists have different lengths or if corresponding
/// prefixes reach different abstract states.
pub fn check_shi<I: RandomizedImpl>(
    imp: &I,
    h1: &(Vec<I::Op>, Vec<usize>),
    h2: &(Vec<I::Op>, Vec<usize>),
) -> Result<(), HiDistributionViolation<I::Mem>> {
    let (seq1, points1) = h1;
    let (seq2, points2) = h2;
    assert_eq!(
        points1.len(),
        points2.len(),
        "point lists must have equal length"
    );
    for (&p1, &p2) in points1.iter().zip(points2) {
        assert_states_match(imp, &seq1[..p1], &seq2[..p2]);
    }
    let d1 = joint_distribution(imp, seq1, points1);
    let d2 = joint_distribution(imp, seq2, points2);
    compare(&d1, &d2)
}

fn assert_states_match<I: RandomizedImpl>(imp: &I, seq1: &[I::Op], seq2: &[I::Op]) {
    // The abstract state must be a function of the operation sequence alone
    // (it cannot depend on the coin flips in a correct implementation);
    // probing the zero tape suffices to compare the two sequences.
    let state = |seq: &[I::Op]| {
        let mut draws = Draws::replay(vec![0; 4096]);
        let mut mem = imp.initial();
        for op in seq {
            mem = imp.apply(&mem, op, &mut draws);
        }
        imp.abstract_state(&mem)
    };
    assert_eq!(
        state(seq1),
        state(seq2),
        "the definitions only compare histories reaching the same state"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-cell "register" that stores the value XOR a fresh coin flip's
    /// placement bit — deliberately not HI at all.
    struct CoinRegister;

    impl RandomizedImpl for CoinRegister {
        type Op = u8;
        type Mem = (u8, usize);
        type State = u8;

        fn initial(&self) -> Self::Mem {
            (0, 0)
        }

        fn apply(&self, _mem: &Self::Mem, op: &u8, draws: &mut Draws) -> Self::Mem {
            (*op, draws.draw(2))
        }

        fn abstract_state(&self, mem: &Self::Mem) -> u8 {
            mem.0
        }
    }

    #[test]
    fn distribution_sums_to_one_and_is_uniform() {
        let d = joint_distribution(&CoinRegister, &[5u8], &[1]);
        assert_eq!(d.len(), 2);
        for p in d.values() {
            assert_eq!(*p, Fraction::new(1, 2));
        }
    }

    #[test]
    fn whi_holds_for_memoryless_randomness() {
        // Any two one-op histories writing 5: same uniform distribution.
        check_whi(&CoinRegister, &[5u8], &[5u8]).unwrap();
        // Longer history, same final op: the final flip is fresh, so the
        // final-memory distribution is the same — WHI holds.
        check_whi(&CoinRegister, &[1u8, 5], &[5u8]).unwrap();
    }

    #[test]
    fn shi_detects_refreshed_randomness() {
        // Observing twice: (after op1, after op1) has perfectly correlated
        // memories in the short history, but the long history re-flips.
        let short = (vec![5u8], vec![1, 1]);
        let long = (vec![5u8, 5u8], vec![1, 2]);
        let err = check_shi(&CoinRegister, &short, &long).unwrap_err();
        assert!(err.p1 != err.p2);
    }

    #[test]
    fn joint_points_capture_intermediate_memories() {
        let d = joint_distribution(&CoinRegister, &[1u8, 2u8], &[1, 2]);
        // Two independent flips: four equally likely (mem1, mem2) tuples.
        assert_eq!(d.len(), 4);
        for p in d.values() {
            assert_eq!(*p, Fraction::new(1, 4));
        }
    }
}
