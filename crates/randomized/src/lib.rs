#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Sequential *randomized* history independence (paper §1, §2 and §7).
//!
//! For deterministic implementations, weak and strong history independence
//! coincide (Proposition 3) and the rest of the workspace treats them as
//! one. Once implementations may flip coins, the two notions split:
//!
//! * **WHI** (Definition 1): any two operation sequences reaching the same
//!   state induce the same *distribution* over memory representations —
//!   protection against an observer who looks once.
//! * **SHI** (Definition 2): the *joint* distributions at any matching lists
//!   of observation points coincide — protection against an observer who
//!   looks repeatedly.
//!
//! The paper's §1 example: a set storing each inserted item at a fresh
//! random location is weakly HI but not strongly HI, because re-inserting an
//! item may move it, which a twice-looking observer detects. This crate
//! makes that example *exactly checkable*: randomness is modeled as an
//! explicit choice tape, the checker enumerates every tape, and
//! distributions are compared as exact rationals — no sampling error.
//!
//! # Example
//!
//! ```
//! use hi_randomized::{check_whi, check_shi, RandomSlotSet, SetOp};
//!
//! let set = RandomSlotSet::new(2, 3); // 2 elements, 3 slots
//! // WHI: {1} reached directly or via inserting and removing 2.
//! let direct = vec![SetOp::Insert(1)];
//! let detour = vec![SetOp::Insert(1), SetOp::Insert(2), SetOp::Remove(2)];
//! assert!(check_whi(&set, &direct, &detour).is_ok());
//!
//! // SHI: observe after the first insert and again at the end. Re-inserting
//! // element 1 may move it; the twice-looking observer notices.
//! let stay = (vec![SetOp::Insert(1)], vec![1, 1]);
//! let move_around = (
//!     vec![SetOp::Insert(1), SetOp::Remove(1), SetOp::Insert(1)],
//!     vec![1, 3],
//! );
//! assert!(check_shi(&set, &stay, &move_around).is_err());
//! ```

mod fraction;
mod model;
mod random_set;

pub use fraction::Fraction;
pub use model::{
    check_shi, check_whi, joint_distribution, Distribution, Draws, HiDistributionViolation,
    RandomizedImpl,
};
pub use random_set::{CanonicalSlotSet, RandomSlotSet, SetOp};
