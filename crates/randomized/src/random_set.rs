//! The paper's §1 example: a set whose inserts pick fresh random locations —
//! weakly but not strongly history independent — and its canonical
//! deterministic counterpart.

use crate::model::{Draws, RandomizedImpl};

/// Operations of the slot sets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetOp {
    /// Add element `e` (no-op if present).
    Insert(u32),
    /// Remove element `e` (no-op if absent).
    Remove(u32),
}

/// A set over `{1..=t}` stored in `m ≥ t` memory slots, each insert placing
/// its element in a *uniformly random free slot* (the paper's §1 example).
///
/// Weakly HI: by symmetry, the distribution of placements depends only on
/// the current contents. Not strongly HI: remove + re-insert relocates the
/// element with probability `> 0`, which an observer who saw the earlier
/// placement detects.
#[derive(Clone, Copy, Debug)]
pub struct RandomSlotSet {
    t: u32,
    m: usize,
}

impl RandomSlotSet {
    /// Creates a set over `{1..=t}` with `m` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `t >= 1` and `m >= t` (inserts must always find a free
    /// slot).
    pub fn new(t: u32, m: usize) -> Self {
        assert!(t >= 1, "domain must be nonempty");
        assert!(m >= t as usize, "need at least one slot per element");
        RandomSlotSet { t, m }
    }
}

impl RandomizedImpl for RandomSlotSet {
    type Op = SetOp;
    /// Slot contents: 0 = empty, else the element.
    type Mem = Vec<u32>;
    /// Sorted member list.
    type State = Vec<u32>;

    fn initial(&self) -> Vec<u32> {
        vec![0; self.m]
    }

    fn apply(&self, mem: &Vec<u32>, op: &SetOp, draws: &mut Draws) -> Vec<u32> {
        let mut mem = mem.clone();
        match op {
            SetOp::Insert(e) => {
                assert!((1..=self.t).contains(e), "element out of domain");
                if !mem.contains(e) {
                    let free: Vec<usize> = (0..self.m).filter(|&s| mem[s] == 0).collect();
                    let slot = free[draws.draw(free.len())];
                    mem[slot] = *e;
                }
            }
            SetOp::Remove(e) => {
                for slot in &mut mem {
                    if slot == e {
                        *slot = 0;
                    }
                }
            }
        }
        mem
    }

    fn abstract_state(&self, mem: &Vec<u32>) -> Vec<u32> {
        let mut members: Vec<u32> = mem.iter().copied().filter(|&e| e != 0).collect();
        members.sort_unstable();
        members
    }
}

/// The deterministic counterpart: element `e` always lives in slot `e - 1`.
/// Canonical, hence (Proposition 3) both weakly and strongly HI.
#[derive(Clone, Copy, Debug)]
pub struct CanonicalSlotSet {
    t: u32,
}

impl CanonicalSlotSet {
    /// Creates a set over `{1..=t}`.
    pub fn new(t: u32) -> Self {
        assert!(t >= 1, "domain must be nonempty");
        CanonicalSlotSet { t }
    }
}

impl RandomizedImpl for CanonicalSlotSet {
    type Op = SetOp;
    type Mem = Vec<u32>;
    type State = Vec<u32>;

    fn initial(&self) -> Vec<u32> {
        vec![0; self.t as usize]
    }

    fn apply(&self, mem: &Vec<u32>, op: &SetOp, _draws: &mut Draws) -> Vec<u32> {
        let mut mem = mem.clone();
        match op {
            SetOp::Insert(e) => mem[(*e - 1) as usize] = *e,
            SetOp::Remove(e) => mem[(*e - 1) as usize] = 0,
        }
        mem
    }

    fn abstract_state(&self, mem: &Vec<u32>) -> Vec<u32> {
        mem.iter().copied().filter(|&e| e != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{check_shi, check_whi, joint_distribution};
    use crate::Fraction;

    #[test]
    fn insert_distribution_is_uniform_over_free_slots() {
        let set = RandomSlotSet::new(2, 3);
        let d = joint_distribution(&set, &[SetOp::Insert(1)], &[1]);
        assert_eq!(d.len(), 3, "three possible placements");
        for p in d.values() {
            assert_eq!(*p, Fraction::new(1, 3));
        }
    }

    #[test]
    fn random_set_is_whi_on_paper_pairs() {
        // Definition 1 pairs: same final state via different histories.
        let set = RandomSlotSet::new(2, 3);
        let pairs: Vec<(Vec<SetOp>, Vec<SetOp>)> = vec![
            // {1} directly vs via a 2-detour.
            (
                vec![SetOp::Insert(1)],
                vec![SetOp::Insert(1), SetOp::Insert(2), SetOp::Remove(2)],
            ),
            // {1} directly vs remove + re-insert.
            (
                vec![SetOp::Insert(1)],
                vec![SetOp::Insert(1), SetOp::Remove(1), SetOp::Insert(1)],
            ),
            // {1,2} in either insertion order.
            (
                vec![SetOp::Insert(1), SetOp::Insert(2)],
                vec![SetOp::Insert(2), SetOp::Insert(1)],
            ),
        ];
        for (s1, s2) in pairs {
            check_whi(&set, &s1, &s2)
                .unwrap_or_else(|v| panic!("WHI must hold for {s1:?} vs {s2:?}: {v}"));
        }
    }

    #[test]
    fn random_set_is_not_shi() {
        // The §1 narrative: insert, remove, insert again; an observer who
        // sees the memory after each insert can tell re-insertion happened,
        // because the element may move. Compare against the single-insert
        // history observed twice at the same point.
        let set = RandomSlotSet::new(2, 3);
        let stay = (vec![SetOp::Insert(1)], vec![1, 1]);
        let reinsert = (
            vec![SetOp::Insert(1), SetOp::Remove(1), SetOp::Insert(1)],
            vec![1, 3],
        );
        let violation =
            check_shi(&set, &stay, &reinsert).expect_err("random placement cannot be strongly HI");
        // In `stay`, both observations are the same memory with certainty;
        // in `reinsert` they differ with probability 2/3 (m = 3 free slots
        // at re-insertion, 1 matching).
        assert_ne!(violation.p1, violation.p2);
    }

    #[test]
    fn canonical_set_is_whi_and_shi() {
        let set = CanonicalSlotSet::new(3);
        let s1 = vec![SetOp::Insert(1), SetOp::Insert(3)];
        let s2 = vec![
            SetOp::Insert(3),
            SetOp::Insert(2),
            SetOp::Remove(2),
            SetOp::Insert(1),
        ];
        check_whi(&set, &s1, &s2).unwrap();
        let h1 = (s1, vec![2, 2]);
        let h2 = (s2, vec![4, 4]);
        check_shi(&set, &h1, &h2).unwrap();
    }

    #[test]
    fn deterministic_whi_equals_shi() {
        // Proposition 3's content, on the canonical set: single-point and
        // multi-point observations coincide for deterministic
        // implementations — both checks pass on arbitrary same-state pairs.
        let set = CanonicalSlotSet::new(2);
        let s1 = vec![SetOp::Insert(2)];
        let s2 = vec![SetOp::Insert(2), SetOp::Remove(1)];
        check_whi(&set, &s1, &s2).unwrap();
        check_shi(&set, &(s1, vec![1, 1]), &(s2, vec![1, 2])).unwrap();
    }

    #[test]
    #[should_panic(expected = "same state")]
    fn mismatched_states_rejected() {
        let set = RandomSlotSet::new(2, 2);
        let _ = check_whi(&set, &[SetOp::Insert(1)], &[SetOp::Insert(2)]);
    }
}
